"""Declarative scenario matrices for parallel sweeps.

A :class:`ScenarioMatrix` is the cartesian product of a workload family's GEMM
shapes with platforms (device + topology + GPU count), collectives, imbalance
factors, seeds and :class:`~repro.core.config.OverlapSettings` overrides.
Expanding it yields a deterministic, duplicate-free list of
:class:`Scenario` jobs, each carrying a content-derived job ID so that a
re-run (or a resumed run) maps onto exactly the same job set.

Scenarios are built from plain strings and numbers -- not live model objects
-- so they can cross process boundaries and round-trip through JSON configs.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, replace

from repro.comm.primitives import CollectiveKind
from repro.comm.topology import known_topologies
from repro.core.config import OverlapProblem, OverlapSettings
from repro.gpu.device import device_by_name
from repro.gpu.gemm import GemmShape

#: OverlapSettings fields a matrix is allowed to vary (a grid axis of the
#: design-space exploration, not arbitrary code injection from JSON configs).
SETTINGS_AXES = frozenset(
    {
        "max_first_group",
        "max_last_group",
        "max_exhaustive_waves",
        "signal_poll_us",
        "comm_launch_us",
        "executor_jitter",
        "bandwidth_samples_per_decade",
        "bandwidth_profile_noise",
        "seed",
    }
)


@dataclass(frozen=True)
class Platform:
    """One simulated machine: device + interconnect + collective size."""

    device: str
    topology: str
    gpus: int

    def __post_init__(self) -> None:
        if self.gpus < 2:
            raise ValueError("a platform needs at least 2 GPUs")

    def describe(self) -> str:
        return f"{self.gpus}x {self.device} ({self.topology})"


@dataclass(frozen=True)
class Scenario:
    """One fully-specified sweep job, reconstructible from primitives."""

    workload: str
    m: int
    n: int
    k: int
    device: str
    topology: str
    gpus: int
    collective: str
    imbalance: float = 1.0
    seed: int = 0
    #: Sorted (name, value) pairs overriding the base OverlapSettings.
    settings_overrides: tuple[tuple[str, float], ...] = ()

    @property
    def shape(self) -> GemmShape:
        return GemmShape(m=self.m, n=self.n, k=self.k)

    @property
    def job_id(self) -> str:
        """Deterministic content-derived ID, stable across runs and hosts."""
        digest = hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode("utf-8")
        ).hexdigest()
        return f"{self.workload}-{digest[:12]}"

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "m": self.m,
            "n": self.n,
            "k": self.k,
            "device": self.device,
            "topology": self.topology,
            "gpus": self.gpus,
            "collective": self.collective,
            "imbalance": self.imbalance,
            "seed": self.seed,
            "settings_overrides": {name: value for name, value in self.settings_overrides},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Scenario":
        overrides = _normalize_overrides(payload.get("settings_overrides", {}))
        return cls(
            workload=str(payload["workload"]),
            m=int(payload["m"]),
            n=int(payload["n"]),
            k=int(payload["k"]),
            device=str(payload["device"]),
            topology=str(payload["topology"]),
            gpus=int(payload["gpus"]),
            collective=str(payload["collective"]),
            imbalance=float(payload.get("imbalance", 1.0)),
            seed=int(payload.get("seed", 0)),
            settings_overrides=overrides,
        )

    # -- materialisation ---------------------------------------------------------

    def to_problem(self) -> OverlapProblem:
        topology = known_topologies()[self.topology].with_n_gpus(self.gpus)
        return OverlapProblem(
            shape=self.shape,
            device=device_by_name(self.device),
            topology=topology,
            collective=CollectiveKind.from_name(self.collective),
            imbalance=self.imbalance,
        )

    def to_settings(self, base: OverlapSettings | None = None) -> OverlapSettings:
        settings = base if base is not None else OverlapSettings()
        overrides = dict(self.settings_overrides)
        overrides.setdefault("seed", self.seed)
        return replace(settings, **_coerce_override_types(overrides))

    def describe(self) -> str:
        return (
            f"{self.workload}: {self.shape} + {self.collective} on "
            f"{self.gpus}x {self.device} ({self.topology})"
        )


def _normalize_overrides(overrides: Mapping) -> tuple[tuple[str, float], ...]:
    unknown = set(overrides) - SETTINGS_AXES
    if unknown:
        raise KeyError(
            f"unknown OverlapSettings axes {sorted(unknown)}; allowed: {sorted(SETTINGS_AXES)}"
        )
    return tuple(sorted((str(name), float(value)) for name, value in overrides.items()))


def _coerce_override_types(overrides: Mapping[str, float]) -> dict:
    """Cast normalised float overrides back to the field's declared type."""
    integral = {"max_first_group", "max_last_group", "max_exhaustive_waves",
                "bandwidth_samples_per_decade", "seed"}
    return {
        name: int(value) if name in integral else float(value)
        for name, value in overrides.items()
    }


@dataclass(frozen=True)
class ScenarioMatrix:
    """Declarative grid of scenarios: shapes x platforms x collectives x ...

    ``expand()`` is deterministic (axes are iterated in declaration order) and
    duplicate-free (repeated axis values or colliding combinations collapse to
    one scenario).
    """

    name: str
    workload: str
    shapes: tuple[GemmShape, ...]
    platforms: tuple[Platform, ...]
    collectives: tuple[str, ...]
    imbalances: tuple[float, ...] = (1.0,)
    seeds: tuple[int, ...] = (0,)
    settings_grid: tuple[tuple[tuple[str, float], ...], ...] = ((),)

    def __post_init__(self) -> None:
        if not self.shapes or not self.platforms or not self.collectives:
            raise ValueError("a matrix needs at least one shape, platform and collective")

    def __len__(self) -> int:
        return len(self.expand())

    def expand(self) -> list[Scenario]:
        """The full job list: deterministic order, duplicates collapsed."""
        scenarios: list[Scenario] = []
        seen: set[str] = set()
        for shape in self.shapes:
            for platform in self.platforms:
                for collective in self.collectives:
                    for imbalance in self.imbalances:
                        for seed in self.seeds:
                            for overrides in self.settings_grid:
                                scenario = Scenario(
                                    workload=self.workload,
                                    m=shape.m,
                                    n=shape.n,
                                    k=shape.k,
                                    device=platform.device,
                                    topology=platform.topology,
                                    gpus=platform.gpus,
                                    collective=collective,
                                    imbalance=imbalance,
                                    seed=seed,
                                    settings_overrides=overrides,
                                )
                                if scenario.job_id in seen:
                                    continue
                                seen.add(scenario.job_id)
                                scenarios.append(scenario)
        return scenarios

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def build(
        cls,
        name: str,
        workload: str,
        shapes: Iterable[GemmShape | tuple[int, int, int]],
        platforms: Iterable[Platform | tuple[str, str, int]],
        collectives: Iterable[str],
        imbalances: Iterable[float] = (1.0,),
        seeds: Iterable[int] = (0,),
        settings_grid: Iterable[Mapping] = ({},),
    ) -> "ScenarioMatrix":
        """Permissive constructor accepting tuples and dicts for the axes."""
        return cls(
            name=name,
            workload=workload,
            shapes=tuple(
                s if isinstance(s, GemmShape) else GemmShape(*s) for s in shapes
            ),
            platforms=tuple(
                p if isinstance(p, Platform) else Platform(*p) for p in platforms
            ),
            collectives=tuple(str(c) for c in collectives),
            imbalances=tuple(float(i) for i in imbalances),
            seeds=tuple(int(s) for s in seeds),
            settings_grid=tuple(_normalize_overrides(o) for o in settings_grid),
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "workload": self.workload,
            "shapes": [[s.m, s.n, s.k] for s in self.shapes],
            "platforms": [[p.device, p.topology, p.gpus] for p in self.platforms],
            "collectives": list(self.collectives),
            "imbalances": list(self.imbalances),
            "seeds": list(self.seeds),
            "settings_grid": [dict(overrides) for overrides in self.settings_grid],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ScenarioMatrix":
        """Rebuild a matrix from :meth:`to_dict` output (the JSON config form)."""
        return cls.build(
            name=str(payload["name"]),
            workload=str(payload.get("workload", payload["name"])),
            shapes=[tuple(s) for s in payload["shapes"]],
            platforms=[tuple(p) for p in payload["platforms"]],
            collectives=payload["collectives"],
            imbalances=payload.get("imbalances", (1.0,)),
            seeds=payload.get("seeds", (0,)),
            settings_grid=payload.get("settings_grid", ({},)),
        )
