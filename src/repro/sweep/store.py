"""Persistent JSONL result store with resume-on-rerun.

One sweep run appends one JSON object per completed job to a ``.jsonl`` file.
Append-only JSONL keeps concurrent sweeps cheap (no rewrite-the-world on every
job) and makes resume trivial: a re-run loads the completed job IDs and skips
them.  Records from interrupted runs survive, so a sweep can be killed and
resumed without losing finished work.
"""

from __future__ import annotations

import json
from collections.abc import Iterator, Mapping
from pathlib import Path


class ResultStore:
    """Append-only JSONL storage of sweep job records."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def append(self, record: Mapping) -> None:
        """Durably append one job record (creates parent directories)."""
        if "job_id" not in record:
            raise KeyError("sweep records must carry a 'job_id'")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(dict(record), sort_keys=True) + "\n")

    def records(self) -> Iterator[dict]:
        """All stored records in append order (empty iterator if no file)."""
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def completed_ids(self) -> set[str]:
        """Job IDs that finished successfully (the resume skip-set).

        Failed records stay in the file for post-mortems but are *not*
        considered complete, so a resumed run retries them.
        """
        return {
            record["job_id"]
            for record in self.records()
            if record.get("status", "ok") == "ok"
        }

    def latest_by_id(self) -> dict[str, dict]:
        """Last record per job ID (a retry overrides its failed predecessor)."""
        latest: dict[str, dict] = {}
        for record in self.records():
            latest[record["job_id"]] = record
        return latest
