"""Persistent JSONL result store with resume-on-rerun.

One sweep run appends one JSON object per completed job to a ``.jsonl`` file.
Append-only JSONL keeps concurrent sweeps cheap (no rewrite-the-world on every
job) and makes resume trivial: a re-run loads the completed job IDs and skips
them.  Records from interrupted runs survive, so a sweep can be killed and
resumed without losing finished work.

A run killed *mid-write* leaves a truncated final line; such partial records
are quarantined (skipped and counted on :attr:`ResultStore.quarantined`)
rather than raised, so the resumed run retries the interrupted job instead of
crashing on load.
"""

from __future__ import annotations

import json
from collections.abc import Iterator, Mapping
from pathlib import Path


class ResultStore:
    """Append-only JSONL storage of sweep job records."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        #: Undecodable lines skipped by the last :meth:`records` scan
        #: (typically one truncated trailing record from a killed run).
        self.quarantined = 0
        # Once this store has appended (or probed) the file, its tail is known
        # to end in a newline; skip the per-append probe from then on.
        self._tail_known_clean = False

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def append(self, record: Mapping) -> None:
        """Durably append one job record (creates parent directories).

        If the file ends in a partial line (a run killed mid-write), the new
        record starts on a fresh line so the truncated record cannot swallow
        it.
        """
        if "job_id" not in record:
            raise KeyError("sweep records must carry a 'job_id'")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        needs_newline = False
        if not self._tail_known_clean and self.path.exists() and self.path.stat().st_size > 0:
            with self.path.open("rb") as peek:
                peek.seek(-1, 2)
                needs_newline = peek.read(1) != b"\n"
        with self.path.open("a", encoding="utf-8") as handle:
            if needs_newline:
                handle.write("\n")
            handle.write(json.dumps(dict(record), sort_keys=True) + "\n")
        self._tail_known_clean = True

    def records(self) -> Iterator[dict]:
        """All decodable records in append order (empty iterator if no file).

        Partial records (a truncated trailing line, or any line that is not
        valid JSON) are skipped and counted on :attr:`quarantined` -- their
        job IDs never enter the resume skip-set, so the jobs are retried.
        """
        if not self.path.exists():
            return
        self.quarantined = 0
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self.quarantined += 1
                    continue
                yield record

    def completed_ids(self) -> set[str]:
        """Job IDs that finished successfully (the resume skip-set).

        Failed records stay in the file for post-mortems but are *not*
        considered complete, so a resumed run retries them.
        """
        return {
            record["job_id"]
            for record in self.records()
            if record.get("status", "ok") == "ok"
        }

    def latest_by_id(self) -> dict[str, dict]:
        """Last record per job ID (a retry overrides its failed predecessor)."""
        latest: dict[str, dict] = {}
        for record in self.records():
            latest[record["job_id"]] = record
        return latest
