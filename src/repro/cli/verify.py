"""``repro verify`` -- run the NumPy correctness pipeline on a small instance."""

from __future__ import annotations

import argparse

from repro.cli.common import (
    add_multinode_arguments,
    add_profile_arguments,
    add_seed_argument,
    finish_profile,
    profile_scope,
    topology_from_args,
)
from repro.comm.topology import known_topologies

NAME = "verify"


def add_parser(sub) -> None:
    parser = sub.add_parser(NAME, help="run the NumPy correctness pipeline (small instance)")
    parser.add_argument("--collective", default="allreduce",
                        choices=["allreduce", "reducescatter", "alltoall"])
    parser.add_argument("--topology", default="tiny-pcie", choices=sorted(known_topologies()),
                        help="simulated server / interconnect (default: the tiny test box)")
    parser.add_argument("--gpus", type=int, default=4)
    add_seed_argument(parser)
    add_multinode_arguments(parser)
    add_profile_arguments(parser)


def run(args: argparse.Namespace) -> int:
    from repro.comm.primitives import CollectiveKind
    from repro.core.config import OverlapProblem, OverlapSettings
    from repro.core.overlap import FlashOverlapOperator
    from repro.gpu.device import GPUSpec
    from repro.gpu.gemm import GemmShape, GemmTileConfig

    with profile_scope(args, NAME) as session:
        device = GPUSpec(name="tiny-gpu", sm_count=8, fp16_tflops=4.0,
                         hbm_bandwidth_gbps=200.0)
        topology = topology_from_args(args)
        problem = OverlapProblem(
            shape=GemmShape(m=64, n=48, k=32),
            device=device,
            topology=topology,
            collective=CollectiveKind.from_name(args.collective),
            gemm_config=GemmTileConfig(tile_m=8, tile_n=8, tile_k=8, swizzle_size=2),
        )
        operator = FlashOverlapOperator(problem, OverlapSettings(seed=args.seed))
        result = operator.run_numeric()
    status = "all close" if result.allclose() else "MISMATCH"
    print(f"{problem.collective.short_name} on {topology.n_gpus} simulated GPUs "
          f"({topology.name}): {status} (max |error| = {result.max_abs_error():.3e})")
    finish_profile(args, session, NAME)
    return 0 if result.allclose() else 1
