"""``repro compare`` -- compare FlashOverlap against every supported baseline."""

from __future__ import annotations

import argparse

from repro.cli.common import (
    add_problem_arguments,
    add_profile_arguments,
    finish_profile,
    problem_from_args,
    profile_scope,
    settings_from_args,
)

NAME = "compare"


def add_parser(sub) -> None:
    parser = sub.add_parser(NAME, help="compare FlashOverlap against the baselines")
    add_problem_arguments(parser)
    add_profile_arguments(parser)


def run(args: argparse.Namespace) -> int:
    from repro.analysis.speedup import compare_methods

    with profile_scope(args, NAME) as session:
        problem = problem_from_args(args)
        comparison = compare_methods(problem, settings=settings_from_args(args))
    print(f"problem: {problem.describe()}")
    width = max(len(name) for name in comparison.speedups)
    for name, speedup in sorted(comparison.speedups.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<{width}} : {speedup:.3f}x")
    print(f"best method: {comparison.best_method()}")
    finish_profile(args, session, NAME)
    return 0
