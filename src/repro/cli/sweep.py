"""``repro sweep`` -- fan a scenario matrix out over worker processes."""

from __future__ import annotations

import argparse
import json

from repro.cli.common import (
    add_json_argument,
    add_profile_arguments,
    command_error,
    finish_profile,
    profile_scope,
    write_json_report,
)

NAME = "sweep"


def add_parser(sub) -> None:
    parser = sub.add_parser(
        NAME, help="fan a scenario matrix out over worker processes into a JSONL store"
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--preset", action="append", dest="presets", metavar="NAME",
                        help="named scenario matrix (repeatable); see --list-presets")
    source.add_argument("--config", type=str,
                        help="JSON file holding a ScenarioMatrix dict (see sweep docs)")
    source.add_argument("--list-presets", action="store_true",
                        help="print the known preset matrices and exit")
    parser.add_argument("--out", type=str, default="sweep_results.jsonl",
                        help="JSONL result store (appended to; used by --resume)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (<=1 runs in-process)")
    parser.add_argument("--resume", action="store_true",
                        help="skip job IDs already completed in --out")
    parser.add_argument("--cache", type=str, default=None,
                        help="GEMM shape-cache JSON warm start, updated after the run")
    parser.add_argument("--plan-store", type=str, default=None,
                        help="content-addressed priced-cell store: unchanged sweep "
                             "points replay from it instead of re-simulating; "
                             "freshly priced cells are written back")
    parser.add_argument("--baselines", action="store_true",
                        help="also evaluate every baseline method per scenario (slower)")
    parser.add_argument("--group-by", type=str, default="workload,collective,topology",
                        help="comma-separated scenario fields of the summary rollup")
    parser.add_argument("--heartbeat", type=float, default=0.0, metavar="S",
                        help="print progress lines (done/total, retries, quarantines, "
                             "ETA) to stderr every S seconds (0 disables)")
    add_json_argument(parser, "write the summaries and per-job records to a JSON file")
    add_profile_arguments(parser)


def run(args: argparse.Namespace) -> int:
    import repro.api as api

    if args.list_presets:
        from repro.sweep import sweep_presets

        for name, factory in sorted(sweep_presets().items()):
            print(f"{name:<20} {len(factory())} scenarios")
        return 0

    group_keys = tuple(key.strip() for key in args.group_by.split(",") if key.strip())
    try:
        with profile_scope(args, NAME) as session:
            report = api.sweep(
                args.presets,
                config=args.config,
                out=args.out,
                workers=args.workers,
                resume=args.resume,
                cache=args.cache,
                plan_store=args.plan_store,
                baselines=args.baselines,
                group_by=group_keys,
                heartbeat_s=args.heartbeat,
            )
    except (KeyError, ValueError, OSError, json.JSONDecodeError) as error:
        return command_error(NAME, error)

    print(report.summary_table())
    meta = report.meta
    print(f"\nresults  : {meta['out']} ({meta['completed_jobs']} completed jobs)")
    if args.cache:
        print(f"cache    : {args.cache} ({meta['cache_entries']} entries)")
    if args.plan_store:
        print(f"plans    : {args.plan_store} ({meta['priced_cells']} cells, "
              f"{meta['priced_hits']} replayed)")
    finish_profile(args, session, NAME, report)
    if args.json:
        write_json_report(report, args.json)
    return 1 if report.failed else 0
