"""Command-line interface: tune, evaluate, serve, schedule and plan overlap.

A thin front end over the :mod:`repro.api` facade (and, for the historical
single-problem commands, :class:`~repro.core.overlap.FlashOverlapOperator`)
so the library can be exercised without writing Python::

    repro report  --m 4096 --n 8192 --k 7168 --device rtx4090 \
                  --topology rtx4090-pcie --gpus 4 --collective allreduce
    repro tune    --m 16384 --n 8192 --k 2048 --device a800 \
                  --topology a800-nvlink --gpus 4 --collective reducescatter
    repro verify  --collective alltoall --gpus 4
    repro compare --m 16384 --n 8192 --k 4096 --device a800 \
                  --topology a800-nvlink --gpus 8 --collective reducescatter
    repro sweep   --preset llm-inference --workers 4 --out results.jsonl
    repro serve   --rate 32 --requests 64 --workload llama3-70b --baseline
    repro e2e     --workload llama3-training --smoke
    repro pp      --stages 4 --microbatches 8 --schedule zero-bubble
    repro plan    --gpus 8 --smoke --emit-plan plan.json

One module per subcommand (``repro.cli.report`` ... ``repro.cli.plan``); each
defines ``NAME``, ``add_parser(sub)`` and ``run(args) -> int``.  The shared
placement flags (``--device``/``--topology``/``--gpus``/``--nodes``/
``--gpus-per-node``) live in :mod:`repro.cli.common` and resolve into the
:class:`~repro.cluster.ClusterSpec` every subcommand passes to the facade.

Sub-commands:

* ``report``  -- tune, simulate and print the speedup report of one problem;
* ``tune``    -- print the tuned wave-group partition (optionally persist it
  into a JSON shape cache with ``--cache``);
* ``compare`` -- compare FlashOverlap against every supported baseline;
* ``verify``  -- run the NumPy correctness pipeline on a small instance;
* ``sweep``   -- fan a scenario matrix (named preset or JSON config) out over
  worker processes into a JSONL result store, with resume and shape-cache
  warm start;
* ``serve``   -- simulate online serving (Poisson or trace arrivals,
  continuous batching, shape-bucketed plan cache) and report TTFT/TPOT
  percentiles, throughput and goodput, optionally against the non-overlap
  baseline;
* ``e2e``     -- estimate whole-model latency for the paper's end-to-end
  workloads (Table 4) through a shared plan store;
* ``pp``      -- schedule those workloads under pipeline parallelism
  (GPipe / 1F1B / zero-bubble) with plan-store-priced cells, or replay a
  planner-emitted configuration with ``--plan``;
* ``plan``    -- jointly search TP degree x pipeline stages x microbatch
  count x schedule x overlap method, report the latency/memory Pareto
  frontier and emit the winning plan as reusable JSON.

Multi-GPU problems default to one server (``--topology`` x ``--gpus``); pass
``--nodes``/``--gpus-per-node`` instead to place the collective on a
multi-node A800 cluster (NVLink inside a node, InfiniBand across nodes).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.cli import compare, e2e, plan, pp, report, serve, sweep, tune, verify

__all__ = ["main"]

#: Subcommand modules in help-listing order.
_MODULES = (report, tune, compare, verify, sweep, serve, e2e, pp, plan)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlashOverlap reproduction: tune and evaluate GEMM + collective overlap",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for module in _MODULES:
        module.add_parser(sub)
    return parser


_COMMANDS = {module.NAME: module.run for module in _MODULES}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro`` / ``repro-overlap`` console scripts."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # e.g. `repro sweep | head`: the reader went away; exit quietly with
        # the conventional SIGPIPE status instead of a traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
