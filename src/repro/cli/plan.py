"""``repro plan`` -- joint auto-parallelism search over the plan store."""

from __future__ import annotations

import argparse

from repro.cli.common import (
    add_cluster_arguments,
    add_json_argument,
    add_profile_arguments,
    add_seed_argument,
    add_smoke_argument,
    cluster_from_args,
    command_error,
    finish_profile,
    profile_scope,
    write_json_report,
)

NAME = "plan"


def add_parser(sub) -> None:
    from repro.plan import PLAN_METHODS
    from repro.pp.schedule import KNOWN_SCHEDULES
    from repro.workloads.e2e import workload_builders

    parser = sub.add_parser(
        NAME, help="search TP x stages x microbatches x schedule x overlap "
                   "for the best parallelism plan"
    )
    parser.add_argument("--workload", default="llama3-training",
                        choices=sorted(workload_builders()),
                        help="workload to plan (default llama3-training)")
    add_cluster_arguments(parser, device="a800", gpus=8)
    parser.add_argument("--tokens", type=int, default=None,
                        help="total input token count per step "
                             "(default: the workload's paper input size)")
    parser.add_argument("--layers", type=int, default=None,
                        help="layers of the model (default: the paper's count; "
                             "--smoke uses 4)")
    parser.add_argument("--tp", action="append", type=int, dest="tp_degrees",
                        metavar="DEGREE",
                        help="tensor-parallel degree to search (repeatable; default: "
                             "every divisor >= 2 of the GPU count; --smoke uses 2,4,8)")
    parser.add_argument("--microbatches", action="append", type=int,
                        dest="microbatch_counts", metavar="COUNT",
                        help="microbatch count to search (repeatable; default 1,2,4,8; "
                             "--smoke uses 2,4,8)")
    parser.add_argument("--schedule", action="append", dest="schedules", metavar="NAME",
                        choices=sorted(KNOWN_SCHEDULES),
                        help="schedule to search (repeatable; default: all three: "
                             f"{', '.join(KNOWN_SCHEDULES)})")
    parser.add_argument("--method", action="append", dest="methods", metavar="NAME",
                        choices=sorted(PLAN_METHODS),
                        help="execution method to search (repeatable; default: "
                             f"{' and '.join(PLAN_METHODS)})")
    parser.add_argument("--max-configs", type=int, default=None, metavar="N",
                        help="search budget: price at most N configurations "
                             "(cheapest lower bound first)")
    parser.add_argument("--no-prune", action="store_true",
                        help="disable dominated-config pruning (price every candidate)")
    parser.add_argument("--deadline", type=float, default=None, metavar="S",
                        help="wall-clock budget in seconds: stop pricing when it "
                             "elapses and return the best-so-far frontier "
                             "(marked truncated)")
    add_seed_argument(parser)
    parser.add_argument("--emit-plan", type=str, default=None, metavar="PATH",
                        help="write the winning configuration as reusable plan JSON "
                             "(replayable via `repro pp --plan`)")
    parser.add_argument("--replay", action="store_true",
                        help="re-run the winner through the pp and e2e paths and check "
                             "the predictions reproduce bit-identically")
    parser.add_argument("--trace", type=str, default=None, metavar="PREFIX",
                        help="export a Chrome trace of the winning schedule to "
                             "PREFIX-<workload>-winner.json")
    add_json_argument(parser)
    add_smoke_argument(parser,
                       "CI-sized search space: 4 layers, TP and microbatches in "
                       "{2, 4, 8} (the committed BENCH_plan baseline)")
    add_profile_arguments(parser)


def run(args: argparse.Namespace) -> int:
    import repro.api as api

    try:
        with profile_scope(args, NAME) as session:
            report = api.plan(
                args.workload,
                cluster=cluster_from_args(args),
                tokens=args.tokens,
                layers=args.layers,
                tp_degrees=args.tp_degrees,
                microbatch_counts=args.microbatch_counts,
                schedules=args.schedules,
                methods=args.methods,
                max_configs=args.max_configs,
                prune=not args.no_prune,
                deadline=args.deadline,
                seed=args.seed,
                smoke=args.smoke,
            )
    except ValueError as error:
        return command_error(NAME, error)

    print(report.summary_table())
    finish_profile(args, session, NAME, report)
    winner = report.winner
    if winner is None:
        return command_error(NAME, "no feasible configuration was priced")

    if args.emit_plan:
        path = winner.save(args.emit_plan)
        print(f"plan       : {path}")
    if args.trace:
        from pathlib import Path

        from repro.plan import replay_plan
        from repro.sim.trace_export import export_chrome_trace

        replay = replay_plan(winner, record_trace=True)
        trace = replay.estimates[0].schedules[winner.schedule].trace
        path = export_chrome_trace(
            trace, Path(f"{args.trace}-{winner.workload}-winner.json"),
            process_name=f"plan-{winner.workload}",
            obs_spans=report.profile.spans if report.profile is not None else None,
        )
        print(f"trace      : {path}")
    if args.json:
        write_json_report(report, args.json)
    if args.replay:
        from repro.plan import verify_replay

        result = verify_replay(winner)
        width = max(len(name) for name in result["checks"])
        for name, check in result["checks"].items():
            status = "ok" if check["matches"] else "MISMATCH"
            print(f"replay     : {name:<{width}} "
                  f"predicted {check['predicted']!r} == replayed {check['replayed']!r} "
                  f"-> {status}")
        if not result["matches"]:
            print("replay     : MISMATCH -- the plan does not reproduce bit-identically")
            return 1
        print("replay     : bit-identical through the pp and e2e paths")
    return 0
