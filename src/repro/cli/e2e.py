"""``repro e2e`` -- estimate whole-model latency of the paper workloads."""

from __future__ import annotations

import argparse

from repro.cli.common import (
    add_cluster_arguments,
    add_json_argument,
    add_profile_arguments,
    add_seed_argument,
    add_smoke_argument,
    cluster_from_args,
    finish_profile,
    plan_store_line,
    profile_scope,
    write_json_report,
)

NAME = "e2e"


def add_parser(sub) -> None:
    from repro.workloads.e2e import workload_builders

    parser = sub.add_parser(
        NAME, help="estimate whole-model latency of the paper's end-to-end workloads"
    )
    parser.add_argument("--workload", action="append", dest="workloads", metavar="NAME",
                        choices=sorted(workload_builders()),
                        help="workload to estimate (repeatable; default: all five paper "
                             f"workloads: {', '.join(sorted(workload_builders()))})")
    parser.add_argument("--tokens", type=int, default=None,
                        help="input token count / chunk size override "
                             "(default: each model's paper input size)")
    parser.add_argument("--layers", type=int, default=None,
                        help="layers per model (default: the paper's per-model counts; "
                             "--smoke uses 2)")
    add_cluster_arguments(parser, device="a800")
    parser.add_argument("--no-reuse", action="store_true",
                        help="disable the shared plan store (re-tune every operator "
                             "occurrence; the estimate itself is bit-identical)")
    add_seed_argument(parser)
    parser.add_argument("--trace", type=str, default=None, metavar="PREFIX",
                        help="export a Chrome trace per workload to PREFIX-<workload>.json")
    add_json_argument(parser)
    add_smoke_argument(parser,
                       "CI-sized run: paper shapes but 2 layers per model "
                       "(the committed golden fixtures and BENCH_e2e baseline)")
    add_profile_arguments(parser)


def run(args: argparse.Namespace) -> int:
    import repro.api as api

    with profile_scope(args, NAME) as session:
        report = api.estimate(
            args.workloads,
            tokens=args.tokens,
            layers=args.layers,
            cluster=cluster_from_args(args),
            seed=args.seed,
            reuse=not args.no_reuse,
            record_trace=bool(args.trace),
            smoke=args.smoke,
        )

    print(report.table())
    print()
    print(report.breakdown_table())
    for estimate in report.estimates:
        print()
        print(report.operator_table(estimate))
    print("\n" + plan_store_line(report.plan_stats, args.no_reuse))
    finish_profile(args, session, NAME, report)

    if args.trace:
        from pathlib import Path

        from repro.sim.trace_export import export_chrome_trace

        obs_spans = report.profile.spans if report.profile is not None else None
        for estimate in report.estimates:
            path = export_chrome_trace(estimate.trace, Path(f"{args.trace}-{estimate.name}.json"),
                                       obs_spans=obs_spans)
            print(f"trace      : {path}")
    if args.json:
        write_json_report(report, args.json)
    return 0
