"""``repro pp`` -- schedule the paper workloads under pipeline parallelism."""

from __future__ import annotations

import argparse

from repro.cli.common import (
    add_cluster_arguments,
    add_json_argument,
    add_profile_arguments,
    add_seed_argument,
    add_smoke_argument,
    cluster_from_args,
    command_error,
    finish_profile,
    plan_store_line,
    profile_scope,
    write_json_report,
)

NAME = "pp"


def _parse_partition(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as error:  # non-integer parts
        raise argparse.ArgumentTypeError(
            f"--partition wants comma-separated layer counts, got {text!r}"
        ) from error


def add_parser(sub) -> None:
    from repro.pp.schedule import KNOWN_SCHEDULES
    from repro.workloads.e2e import workload_builders

    parser = sub.add_parser(
        NAME, help="schedule the paper workloads under pipeline parallelism "
                   "(GPipe / 1F1B / zero-bubble)"
    )
    parser.add_argument("--workload", action="append", dest="workloads", metavar="NAME",
                        choices=sorted(workload_builders()),
                        help="workload to schedule (repeatable; default: all five paper "
                             "workloads; --smoke uses llama3-training)")
    parser.add_argument("--stages", type=int, default=None,
                        help="pipeline stages the layer stack is split across "
                             "(default 4; --smoke uses 2)")
    parser.add_argument("--microbatches", type=int, default=None,
                        help="microbatches the input tokens are split into "
                             "(default 8; --smoke uses 4)")
    parser.add_argument("--schedule", action="append", dest="schedules", metavar="NAME",
                        choices=sorted(KNOWN_SCHEDULES),
                        help="schedule to evaluate (repeatable; default: all three: "
                             f"{', '.join(KNOWN_SCHEDULES)})")
    parser.add_argument("--partition", type=_parse_partition, default=None, metavar="L0,L1,...",
                        help="explicit per-stage layer counts overriding the balanced "
                             "split (must sum to the layer count)")
    parser.add_argument("--plan", type=str, default=None, metavar="PATH",
                        help="replay a plan JSON emitted by `repro plan --emit-plan` "
                             "(overrides the workload/stage/schedule flags)")
    parser.add_argument("--tokens", type=int, default=None,
                        help="total input token count split across the microbatches "
                             "(default: each model's paper input size)")
    parser.add_argument("--layers", type=int, default=None,
                        help="layers per model (default: the paper's per-model counts; "
                             "--smoke uses 4)")
    add_cluster_arguments(parser, device="a800")
    parser.add_argument("--no-reuse", action="store_true",
                        help="disable the shared plan store (re-tune every operator; "
                             "the schedule estimates are bit-identical)")
    parser.add_argument("--no-fast", action="store_true",
                        help="replay schedules through the event-by-event reference "
                             "path instead of the vectorized sweep (bit-identical)")
    add_seed_argument(parser)
    parser.add_argument("--trace", type=str, default=None, metavar="PREFIX",
                        help="export a Chrome trace (one thread per stage) per workload "
                             "and schedule to PREFIX-<workload>-<schedule>.json")
    add_json_argument(parser)
    add_smoke_argument(parser,
                       "CI-sized run for any flags not passed explicitly: "
                       "llama3-training, 2 stages, 4 microbatches, 4 layers "
                       "(the committed golden fixtures and BENCH_pp baseline)")
    add_profile_arguments(parser)


def _print_report(report, no_reuse: bool = False) -> None:
    for estimate in report.estimates:
        print(report.table(estimate))
        if estimate.synthesized_backward:
            print("(forward-only stream: backward cells synthesized as ~2x forward)")
        for name, schedule in estimate.schedules.items():
            if schedule.trace is not None:
                print()
                print(f"{name} timeline (FlashOverlap, F=forward B=backward W=wgrad):")
                print(schedule.trace.render_ascii(width=64))
        print()
    print(plan_store_line(report.plan_stats, no_reuse))


def _export_traces(report, prefix: str, obs_spans: list | None = None) -> None:
    from pathlib import Path

    from repro.sim.trace_export import export_chrome_trace

    for estimate in report.estimates:
        for schedule_name, schedule in estimate.schedules.items():
            path = export_chrome_trace(
                schedule.trace, Path(f"{prefix}-{estimate.name}-{schedule_name}.json"),
                process_name=f"pipeline-{estimate.name}",
                obs_spans=obs_spans,
            )
            print(f"trace      : {path}")


def run(args: argparse.Namespace) -> int:
    import repro.api as api

    try:
        with profile_scope(args, NAME) as session:
            if args.plan:
                from repro.plan import ParallelismPlan, replay_plan

                plan = ParallelismPlan.load(args.plan)
                print(f"replaying  : {plan.describe()}")
                report = replay_plan(plan, record_trace=True)
            else:
                report = api.pp(
                    args.workloads,
                    stages=args.stages,
                    microbatches=args.microbatches,
                    schedules=args.schedules,
                    tokens=args.tokens,
                    layers=args.layers,
                    partition=args.partition,
                    cluster=cluster_from_args(args),
                    seed=args.seed,
                    reuse=not args.no_reuse,
                    record_trace=True,
                    fast=not args.no_fast,
                    smoke=args.smoke,
                )
    except (OSError, ValueError) as error:
        return command_error(NAME, error)

    _print_report(report, args.no_reuse)
    finish_profile(args, session, NAME, report)
    if args.trace:
        _export_traces(report, args.trace,
                       report.profile.spans if report.profile is not None else None)
    if args.json:
        write_json_report(report, args.json)
    return 0
