"""``python -m repro.cli`` -- the same entry point as the console scripts."""

import sys

from repro.cli import main

sys.exit(main())
