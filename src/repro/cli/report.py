"""``repro report`` -- tune, simulate and print the speedup report of one problem."""

from __future__ import annotations

import argparse

from repro.cli.common import (
    add_problem_arguments,
    add_profile_arguments,
    finish_profile,
    problem_from_args,
    profile_scope,
    settings_from_args,
)

NAME = "report"


def add_parser(sub) -> None:
    parser = sub.add_parser(NAME, help="tune, simulate and print the speedup report")
    add_problem_arguments(parser)
    add_profile_arguments(parser)


def run(args: argparse.Namespace) -> int:
    from repro.core.overlap import FlashOverlapOperator

    with profile_scope(args, NAME) as session:
        problem = problem_from_args(args)
        operator = FlashOverlapOperator(problem, settings_from_args(args))
        plan = operator.plan()
        report = operator.report()
    print(f"problem           : {problem.describe()}")
    print(f"waves             : {plan.partition.num_waves}")
    print(f"tuned partition   : {plan.partition}")
    print(f"mode              : {'overlap' if plan.use_overlap else 'sequential fallback'}")
    print(f"non-overlap       : {report.non_overlap_latency * 1e3:.3f} ms")
    print(f"FlashOverlap      : {report.overlap_latency * 1e3:.3f} ms")
    print(f"theoretical bound : {report.theoretical_latency * 1e3:.3f} ms")
    print(f"speedup           : {report.speedup:.3f}x "
          f"({report.ratio_of_theoretical * 100:.1f}% of theoretical)")
    finish_profile(args, session, NAME)
    return 0
