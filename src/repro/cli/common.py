"""Shared argument plumbing of the ``repro`` CLI.

Historically every subcommand grew its own placement flags with its own
resolution logic.  They now all describe the cluster through the same flag
set -- ``--device`` / ``--topology`` / ``--gpus`` plus the multi-node pair
``--nodes`` / ``--gpus-per-node`` -- added by :func:`add_cluster_arguments`
with per-subcommand defaults, and resolve them into one
:class:`~repro.cluster.ClusterSpec` via :func:`cluster_from_args`.  The old
spellings keep working: they *are* the unified flags, only the defaults
differ per subcommand.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

from repro import obs
from repro.cluster import ClusterSpec
from repro.comm.topology import known_topologies
from repro.core.config import OverlapProblem, OverlapSettings
from repro.gpu.device import device_by_name, known_devices
from repro.gpu.gemm import GemmShape

__all__ = [
    "add_cluster_arguments",
    "add_json_argument",
    "add_multinode_arguments",
    "add_problem_arguments",
    "add_profile_arguments",
    "add_seed_argument",
    "add_smoke_argument",
    "cluster_from_args",
    "command_error",
    "finish_profile",
    "plan_store_line",
    "problem_from_args",
    "profile_scope",
    "settings_from_args",
    "topology_from_args",
    "write_json_report",
]


def add_cluster_arguments(
    parser: argparse.ArgumentParser,
    *,
    device: str = "a800",
    topology: str | None = None,
    gpus: int | None = None,
) -> None:
    """The unified placement flags; defaults vary per subcommand."""
    parser.add_argument("--device", default=device, choices=sorted(known_devices()),
                        help="simulated accelerator")
    parser.add_argument("--topology", default=topology, choices=sorted(known_topologies()),
                        help="simulated server / interconnect"
                             + ("" if topology
                                else " (default: each workload's paper placement)"))
    parser.add_argument("--gpus", type=int, default=gpus,
                        help="GPUs in the collective / tensor-parallel group")
    add_multinode_arguments(parser)


def add_multinode_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=None, metavar="N",
                        help="span the collective across N A800 nodes over InfiniBand "
                             "(overrides --topology/--gpus)")
    parser.add_argument("--gpus-per-node", type=int, default=8,
                        help="GPUs per node when --nodes is given")


def add_seed_argument(parser: argparse.ArgumentParser,
                      help_text: str = "seed of the stochastic model terms") -> None:
    parser.add_argument("--seed", type=int, default=0, help=help_text)


def add_smoke_argument(parser: argparse.ArgumentParser, help_text: str) -> None:
    parser.add_argument("--smoke", action="store_true", help=help_text)


def add_json_argument(parser: argparse.ArgumentParser,
                      help_text: str = "write the full report to a JSON file") -> None:
    parser.add_argument("--json", type=str, default=None, metavar="PATH", help=help_text)


def add_problem_arguments(parser: argparse.ArgumentParser) -> None:
    """Flags of the single-problem commands (report / tune / compare)."""
    parser.add_argument("--m", type=int, default=4096, help="GEMM M (rows of the output)")
    parser.add_argument("--n", type=int, default=8192, help="GEMM N (columns of the output)")
    parser.add_argument("--k", type=int, default=7168, help="GEMM K (accumulation depth)")
    add_cluster_arguments(parser, device="rtx4090", topology="rtx4090-pcie", gpus=4)
    parser.add_argument("--collective", default="allreduce",
                        choices=["allreduce", "reducescatter", "alltoall"],
                        help="collective following the GEMM")
    parser.add_argument("--imbalance", type=float, default=1.0,
                        help="per-GPU workload skew (>= 1.0, for expert parallelism)")
    add_seed_argument(parser)


def cluster_from_args(args: argparse.Namespace) -> ClusterSpec:
    """The one ClusterSpec every subcommand hands to :mod:`repro.api`."""
    return ClusterSpec(
        device=getattr(args, "device", "a800"),
        topology=args.topology,
        gpus=args.gpus,
        nodes=args.nodes,
        gpus_per_node=args.gpus_per_node,
    )


def topology_from_args(args: argparse.Namespace):
    """Resolution of the single-problem commands: a topology is always concrete."""
    if getattr(args, "nodes", None):
        from repro.comm.topology import multinode_a800

        return multinode_a800(n_nodes=args.nodes, gpus_per_node=args.gpus_per_node)
    return known_topologies()[args.topology].with_n_gpus(args.gpus)


def problem_from_args(args: argparse.Namespace) -> OverlapProblem:
    from repro.comm.primitives import CollectiveKind

    return OverlapProblem(
        shape=GemmShape(m=args.m, n=args.n, k=args.k),
        device=device_by_name(args.device),
        topology=topology_from_args(args),
        collective=CollectiveKind.from_name(args.collective),
        imbalance=args.imbalance,
    )


def settings_from_args(args: argparse.Namespace) -> OverlapSettings:
    return OverlapSettings(seed=args.seed)


def command_error(command: str, error: object) -> int:
    """Print a subcommand error to stderr; returns the conventional exit 2."""
    print(f"repro {command}: error: {error}", file=sys.stderr)
    return 2


def write_json_report(report, path: str) -> None:
    """Persist a ReportMixin report; the ``--json`` flag of every subcommand."""
    target = report.save_json(path)
    print(f"report     : {target}")


def add_profile_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags of every subcommand."""
    parser.add_argument("--profile", action="store_true",
                        help="print a per-phase wall-time table and a metrics "
                             "snapshot after the run")
    parser.add_argument("--profile-json", type=str, default=None, metavar="PATH",
                        help="write the profile snapshot (spans, phases, metrics) "
                             "to a JSON file; implies instrumentation is on")


@contextlib.contextmanager
def profile_scope(args: argparse.Namespace, command: str):
    """Observability session of one CLI invocation.

    Yields the active :class:`~repro.obs.ObsSession` when ``--profile`` or
    ``--profile-json`` was given, else ``None`` (all instrumentation stays
    no-op).  The whole command runs inside a ``repro <command>`` root span.
    When the command body raises, the flight-recorder ring buffer is dumped
    to ``repro-<command>-flight.jsonl`` before the exception propagates, so
    a crashed run leaves a post-mortem artifact.
    """
    wanted = getattr(args, "profile", False) or getattr(args, "profile_json", None)
    if not wanted:
        yield None
        return
    with obs.observe() as session:
        try:
            with obs.span(f"repro {command}"):
                yield session
        except Exception:
            flight_path = f"repro-{command}-flight.jsonl"
            obs.dump_flight(flight_path)
            print(f"repro {command}: flight recorder dumped to {flight_path}",
                  file=sys.stderr)
            raise


def finish_profile(args: argparse.Namespace, session, command: str, report=None) -> None:
    """Snapshot the session; print/write per the ``--profile*`` flags.

    Call right after the ``with profile_scope(...)`` block, so the root span
    is already closed and the snapshot's phase rollup sees its full duration.
    When ``report`` is given the snapshot is attached first, so a later
    ``--json`` write carries the ``observability`` section.
    """
    if session is None:
        return
    snapshot = session.snapshot(command=f"repro {command}")
    if report is not None:
        report.attach_observability(snapshot)
    if getattr(args, "profile", False):
        print()
        print(snapshot.phase_table())
        metrics = snapshot.metrics_table()
        if metrics:
            print()
            print(metrics)
    target = getattr(args, "profile_json", None)
    if target:
        print(f"profile    : {snapshot.save(target)}")


def plan_store_line(stats: dict, no_reuse: bool = False) -> str:
    """The shared plan-store summary line of e2e / pp."""
    return (f"plan store : {stats['size']} plans, {stats['lookups']} lookups, "
            f"{stats['hit_rate'] * 100:.1f}% hits, "
            f"{stats['tuner_invocations']} tuner invocations"
            + (" (reuse disabled)" if no_reuse else ""))
