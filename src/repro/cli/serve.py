"""``repro serve`` -- simulate online serving with continuous batching."""

from __future__ import annotations

import argparse

from repro.cli.common import (
    add_cluster_arguments,
    add_json_argument,
    add_profile_arguments,
    add_seed_argument,
    add_smoke_argument,
    cluster_from_args,
    command_error,
    finish_profile,
    profile_scope,
    write_json_report,
)

NAME = "serve"


def add_parser(sub) -> None:
    from repro.faults import fault_presets
    from repro.serve.arrivals import length_distributions
    from repro.serve.simulator import SERVE_MODELS

    parser = sub.add_parser(
        NAME, help="simulate online serving: traffic, continuous batching, plan cache"
    )
    # Flags covered by the --smoke preset default to None so that --smoke can
    # fill exactly the values the user did not pass (see api.SERVE_DEFAULTS).
    parser.add_argument("--rate", type=float, default=None,
                        help="Poisson arrival rate in requests/s (default 32)")
    parser.add_argument("--requests", type=int, default=None,
                        help="number of requests to generate "
                             "(default 64, unless --duration bounds the traffic)")
    parser.add_argument("--duration", type=float, default=None,
                        help="bound the arrival window (seconds) instead of, "
                             "or in addition to, --requests")
    parser.add_argument("--distribution", default=None,
                        choices=sorted(length_distributions()),
                        help="prompt/output length distribution of the traffic (default chat)")
    parser.add_argument("--trace", type=str, default=None,
                        help="JSONL request trace replacing the Poisson generator "
                             "(fields: arrival_time, prompt_tokens, output_tokens)")
    parser.add_argument("--workload", default=None, choices=sorted(SERVE_MODELS),
                        help="served model (default llama3-70b)")
    add_cluster_arguments(parser, device="a800", topology="a800-nvlink", gpus=4)
    parser.add_argument("--layers", type=int, default=None,
                        help="decoder layers priced per iteration (default 4)")
    parser.add_argument("--max-batch-tokens", type=int, default=None,
                        help="token budget of one continuous-batching iteration (default 4096)")
    parser.add_argument("--max-batch-size", type=int, default=None,
                        help="maximum concurrently running requests (default 32)")
    parser.add_argument("--plan-cache", type=int, default=64, metavar="CAPACITY",
                        help="plan-cache capacity in bucketed shapes (0 disables caching)")
    parser.add_argument("--warm-cache", type=str, default=None,
                        help="GemmShapeCache JSON warm start, updated after the run")
    parser.add_argument("--baseline", action="store_true",
                        help="also serve the same traffic without overlap and compare")
    parser.add_argument("--slo-ttft", type=float, default=1.0, help="TTFT SLO in seconds")
    parser.add_argument("--slo-tpot", type=float, default=0.1, help="TPOT SLO in seconds")
    parser.add_argument("--faults", type=str, default=None, metavar="PLAN_JSON",
                        help="inject a fault plan (FaultPlan JSON; see examples/)")
    parser.add_argument("--fault-preset", default=None, choices=sorted(fault_presets()),
                        help="inject a named fault preset scaled to the traffic horizon")
    parser.add_argument("--retry-policy", type=str, default=None, metavar="SPEC",
                        help="retry policy for dropped requests, e.g. "
                             "'retries=3,backoff=0.05,multiplier=2,jitter=0.25'")
    parser.add_argument("--deadline", type=float, default=None, metavar="S",
                        help="per-request deadline in seconds (timed-out requests "
                             "are abandoned and counted against goodput)")
    parser.add_argument("--admission-limit", type=int, default=None, metavar="N",
                        help="shed new arrivals once N requests are waiting or running")
    parser.add_argument("--warm-spares", type=int, default=0, metavar="N",
                        help="replica crashes covered by warm spares (failover "
                             "instead of full recovery)")
    parser.add_argument("--failover-delay", type=float, default=0.05, metavar="S",
                        help="outage length of a warm-spare failover (default 0.05s)")
    add_seed_argument(parser, "traffic and model seed")
    add_json_argument(parser, "write the full metrics report to a JSON file")
    parser.add_argument("--no-fast", action="store_true",
                        help="run the one-event-per-iteration reference loop instead "
                             "of the batched fast path (bit-identical)")
    add_smoke_argument(parser,
                       "CI-sized defaults for any flags not passed explicitly "
                       "(short summarization burst on the small model); implies --baseline")
    add_profile_arguments(parser)


def run(args: argparse.Namespace) -> int:
    import repro.api as api

    try:
        with profile_scope(args, NAME) as session:
            report = api.serve(
                rate=args.rate,
                requests=args.requests,
                duration=args.duration,
                distribution=args.distribution,
                trace=args.trace,
                workload=args.workload,
                layers=args.layers,
                max_batch_tokens=args.max_batch_tokens,
                max_batch_size=args.max_batch_size,
                plan_cache=args.plan_cache,
                warm_cache=args.warm_cache,
                baseline=args.baseline,
                slo_ttft=args.slo_ttft,
                slo_tpot=args.slo_tpot,
                faults=args.faults,
                fault_preset=args.fault_preset,
                retry_policy=args.retry_policy,
                deadline=args.deadline,
                admission_limit=args.admission_limit,
                warm_spares=args.warm_spares,
                failover_delay=args.failover_delay,
                cluster=cluster_from_args(args),
                seed=args.seed,
                fast=not args.no_fast,
                smoke=args.smoke,
            )
    except ValueError as error:
        return command_error(NAME, error)

    print(report.summary_table())
    finish_profile(args, session, NAME, report)
    if args.json:
        write_json_report(report, args.json)
    return 0
