"""``repro tune`` -- print the tuned wave-group partition of one problem."""

from __future__ import annotations

import argparse

from repro.cli.common import (
    add_problem_arguments,
    add_profile_arguments,
    finish_profile,
    problem_from_args,
    profile_scope,
    settings_from_args,
)

NAME = "tune"


def add_parser(sub) -> None:
    parser = sub.add_parser(NAME, help="print the tuned wave-group partition")
    add_problem_arguments(parser)
    parser.add_argument("--cache", type=str, default=None,
                        help="JSON shape-cache file to read/update with the tuned result")
    add_profile_arguments(parser)


def run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core.tuner import GemmShapeCache, PredictiveTuner

    with profile_scope(args, NAME) as session:
        problem = problem_from_args(args)
        settings = settings_from_args(args)
        tuner = PredictiveTuner(settings)
        if args.cache:
            cache = (GemmShapeCache.load(args.cache) if Path(args.cache).exists()
                     else GemmShapeCache())
            result = cache.lookup_or_tune(problem, tuner)
            cache.save(args.cache)
            print(f"cache             : {args.cache} ({len(cache)} entries)")
        else:
            result = tuner.tune(problem)
    print(f"problem           : {problem.describe()}")
    print(f"partition         : {result.partition}")
    print(f"predicted latency : {result.predicted_latency * 1e3:.3f} ms")
    print(f"candidates        : {result.candidates_evaluated}")
    print(f"mode              : {'overlap' if result.use_overlap else 'sequential fallback'}")
    finish_profile(args, session, NAME)
    return 0
