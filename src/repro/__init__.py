"""FlashOverlap reproduction: computation/communication overlap via signaling
and reordering, on a simulated multi-GPU substrate.

The package mirrors the paper's structure:

* :mod:`repro.gpu` -- GEMM wave/tile execution model and device presets,
* :mod:`repro.comm` -- NCCL-like collectives (functional + latency models),
* :mod:`repro.sim` -- event/timeline simulation of two-stream execution,
* :mod:`repro.tensor` -- tile layouts and mapping tables,
* :mod:`repro.core` -- the FlashOverlap design (signaling, reordering, wave
  grouping, predictive tuning) and the baselines it is compared against,
* :mod:`repro.workloads` -- GEMM shape suites and model-level workloads,
* :mod:`repro.analysis` -- speedup/heatmap/breakdown reporting helpers,
* :mod:`repro.sweep` -- parallel scenario sweeps (matrices, presets, worker
  fan-out, JSONL result store, aggregation),
* :mod:`repro.plans` -- the shared store of tuned, pre-simulated overlap
  plans (exact or shape-bucketed keying) behind serving and e2e estimation,
* :mod:`repro.serve` -- online serving simulation (request traffic,
  continuous batching, shape-bucketed plan cache, TTFT/TPOT/goodput metrics),
* :mod:`repro.e2e` -- whole-model latency estimation over the paper's
  end-to-end workloads with cross-layer plan reuse (Table 4 / Fig. 12).

Quickstart::

    from repro import (
        FlashOverlapOperator, OverlapProblem, GemmShape,
        RTX_4090, rtx4090_pcie, CollectiveKind,
    )

    problem = OverlapProblem(
        shape=GemmShape(m=4096, n=8192, k=7168),
        device=RTX_4090,
        topology=rtx4090_pcie(4),
        collective=CollectiveKind.ALL_REDUCE,
    )
    op = FlashOverlapOperator(problem)
    print(op.report().speedup)
"""

from repro.comm import (
    CollectiveKind,
    CollectiveModel,
    Topology,
    a800_nvlink,
    ascend_hccs,
    rtx4090_pcie,
)
from repro.core import (
    DEFAULT_SETTINGS,
    FlashOverlapOperator,
    OverlapPlan,
    OverlapProblem,
    OverlapSettings,
    SpeedupReport,
    WavePartition,
)
from repro.gpu import (
    A800,
    ASCEND_910B,
    RTX_4090,
    GemmKernelModel,
    GemmShape,
    GemmTileConfig,
    GPUSpec,
)
from repro.serve import (
    PlanCache,
    PoissonArrivals,
    ServeConfig,
    ServingSimulator,
    TraceArrivals,
)
from repro.sweep import (
    Platform,
    ResultStore,
    Scenario,
    ScenarioMatrix,
    SweepRunner,
    matrix_from_preset,
    sweep_presets,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # core
    "FlashOverlapOperator",
    "OverlapProblem",
    "OverlapSettings",
    "OverlapPlan",
    "SpeedupReport",
    "WavePartition",
    "DEFAULT_SETTINGS",
    # gpu
    "GPUSpec",
    "GemmShape",
    "GemmTileConfig",
    "GemmKernelModel",
    "RTX_4090",
    "A800",
    "ASCEND_910B",
    # comm
    "CollectiveKind",
    "CollectiveModel",
    "Topology",
    "rtx4090_pcie",
    "a800_nvlink",
    "ascend_hccs",
    # sweep
    "Platform",
    "Scenario",
    "ScenarioMatrix",
    "SweepRunner",
    "ResultStore",
    "matrix_from_preset",
    "sweep_presets",
    # serve
    "PoissonArrivals",
    "TraceArrivals",
    "PlanCache",
    "ServeConfig",
    "ServingSimulator",
]
