"""Tile/layout substrate.

The overlap design in FlashOverlap reasons about the GEMM output matrix in
units of *tiles* (the block of output computed by one thread block), and about
finer units derived from tiles: *sub-tiles* (a tile split along its rows into
one slice per GPU, used for ReduceScatter) and *sub-tokens* (a single row of a
tile, used for All-to-All).  This package provides:

* :class:`~repro.tensor.layout.TileLayout` -- the tile grid geometry of an
  ``M x N`` output matrix,
* :class:`~repro.tensor.mapping.MappingTable` -- the original-index to
  reordered-index table used by the pre/post communication reorderings,
* helpers in :mod:`repro.tensor.tiles` to gather tiles (or sub-units) into a
  contiguous communication buffer and scatter them back.
"""

from repro.tensor.layout import TileLayout
from repro.tensor.mapping import MappingTable
from repro.tensor.tiles import (
    extract_tile,
    gather_tiles,
    scatter_tile,
    scatter_tiles,
    split_tile_rows,
)

__all__ = [
    "TileLayout",
    "MappingTable",
    "extract_tile",
    "gather_tiles",
    "scatter_tile",
    "scatter_tiles",
    "split_tile_rows",
]
