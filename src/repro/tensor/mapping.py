"""Mapping tables used by the pre/post communication reorderings.

FlashOverlap packs the tiles (or sub-tiles / sub-tokens) of each wave group
into a contiguous communication buffer in *execution order*, which generally
differs from the address order of the GEMM output.  A mapping table records,
for every original unit index, the position it occupies in the reordered
buffer; the post-communication reorder uses the inverse mapping to restore the
logical order.  The table is tiny compared to the data (the Table 5 overhead
analysis models it as a small extra memory-traffic term).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class MappingTable:
    """Bidirectional original-index <-> reordered-position table.

    The table is built incrementally by appending original unit indices in the
    order in which they are packed into the communication buffer.
    """

    forward: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Position -> original shadow map, kept in sync by append(): makes the
        # occupancy check and original_of() O(1) instead of scanning forward.
        self._inverse: dict[int, int] = {pos: orig for orig, pos in self.forward.items()}

    @classmethod
    def from_order(cls, order: list[int] | np.ndarray) -> "MappingTable":
        """Build a table from a packing order.

        ``order[k]`` is the original index of the unit stored at reordered
        position ``k``.
        """
        table = cls()
        for position, original in enumerate(order):
            table.append(int(original), position)
        return table

    def append(self, original: int, position: int | None = None) -> int:
        """Record that ``original`` is packed at ``position`` (default: next slot)."""
        if original in self.forward:
            raise ValueError(f"unit {original} already present in mapping table")
        if position is None:
            position = len(self.forward)
        if position in self._inverse:
            raise ValueError(f"reordered position {position} already occupied")
        self.forward[original] = position
        self._inverse[position] = original
        return position

    def __len__(self) -> int:
        return len(self.forward)

    def __contains__(self, original: int) -> bool:
        return original in self.forward

    def position_of(self, original: int) -> int:
        """Reordered position of an original unit index."""
        return self.forward[original]

    def original_of(self, position: int) -> int:
        """Original unit index stored at a reordered position (O(1))."""
        try:
            return self._inverse[position]
        except KeyError:
            raise KeyError(f"no unit at reordered position {position}") from None

    def inverse(self) -> dict[int, int]:
        """Return the position -> original mapping as a dict."""
        return dict(self._inverse)

    def as_permutation(self) -> np.ndarray:
        """Return ``perm`` with ``perm[position] = original``.

        Requires the table to be dense: positions must be exactly
        ``0 .. len-1``.
        """
        count = len(self)
        perm = np.empty(count, dtype=np.int64)
        covered = 0
        for position, original in self._inverse.items():
            if 0 <= position < count:
                perm[position] = original
                covered += 1
        if covered != count:
            raise ValueError("mapping table positions are not dense")
        return perm

    def is_permutation(self) -> bool:
        """True when the positions form a dense permutation ``0 .. len-1``."""
        return sorted(self.forward.values()) == list(range(len(self)))

    def size_bytes(self, index_bytes: int = 4) -> int:
        """Memory footprint of the table (one index per entry)."""
        return len(self.forward) * index_bytes

    def merge(self, other: "MappingTable", position_offset: int) -> "MappingTable":
        """Concatenate another table, shifting its positions by ``position_offset``."""
        merged = MappingTable(dict(self.forward))
        for original, pos in other.forward.items():
            merged.append(original, pos + position_offset)
        return merged
