"""Gather/scatter helpers between a matrix and a packed tile buffer.

The pre-communication reordering of FlashOverlap writes finished tiles into a
contiguous communication buffer; the post-communication reordering reads them
back into their logical positions.  On real hardware these are fused into the
GEMM epilogue and the next element-wise kernel; here they are NumPy copies
driven by the same index arithmetic, so that correctness of the mapping logic
can be validated end to end.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.tensor.layout import TileLayout


def extract_tile(matrix: np.ndarray, layout: TileLayout, tile_index: int) -> np.ndarray:
    """Return a copy of one tile of ``matrix``."""
    _check_matrix(matrix, layout)
    rs, cs = layout.tile_slices(tile_index)
    return np.ascontiguousarray(matrix[rs, cs])


def scatter_tile(
    matrix: np.ndarray, layout: TileLayout, tile_index: int, data: np.ndarray
) -> None:
    """Write one tile's data back into ``matrix`` in place."""
    _check_matrix(matrix, layout)
    rs, cs = layout.tile_slices(tile_index)
    expected = (rs.stop - rs.start, cs.stop - cs.start)
    if data.shape != expected:
        raise ValueError(
            f"tile {tile_index} expects shape {expected}, got {data.shape}"
        )
    matrix[rs, cs] = data


def gather_tiles(
    matrix: np.ndarray, layout: TileLayout, tile_indices: Iterable[int]
) -> np.ndarray:
    """Pack tiles into a flat contiguous buffer in the given order.

    This is the pre-communication reordering at tile granularity: each tile is
    flattened row-major and tiles are concatenated in the order of
    ``tile_indices`` (normally the execution order of a wave group).
    """
    parts = [extract_tile(matrix, layout, t).ravel() for t in tile_indices]
    if not parts:
        return np.empty(0, dtype=matrix.dtype)
    return np.concatenate(parts)


def scatter_tiles(
    matrix: np.ndarray,
    layout: TileLayout,
    tile_indices: Sequence[int],
    buffer: np.ndarray,
) -> None:
    """Unpack a flat buffer produced by :func:`gather_tiles` back into ``matrix``."""
    offset = 0
    for tile_index in tile_indices:
        rows, cols = layout.tile_shape(tile_index)
        count = rows * cols
        chunk = buffer[offset : offset + count]
        if chunk.size != count:
            raise ValueError(
                f"buffer exhausted while scattering tile {tile_index}: "
                f"needed {count} elements, got {chunk.size}"
            )
        scatter_tile(matrix, layout, tile_index, chunk.reshape(rows, cols))
        offset += count
    if offset != buffer.size:
        raise ValueError(
            f"buffer has {buffer.size - offset} trailing elements after scattering"
        )


def tile_flat_indices(
    layout: TileLayout, tile_indices: Iterable[int], row_limit: tuple[int, int] | None = None
) -> np.ndarray:
    """Flat (row-major) matrix indices of the given tiles, in pack order.

    ``tile_flat_indices(layout, order)[k]`` is the flat position in the
    ``layout.m x layout.n`` matrix of the ``k``-th element of the buffer
    :func:`gather_tiles` would build for the same tile order.  With
    ``row_limit=(start, stop)`` only rows ``start..stop-1`` *within each tile*
    are included (the ReduceScatter sub-tile split).  Precomputing these
    permutations once per reorder plan turns every pre/post-communication
    reorder into a single ``np.take`` / fancy-index assignment.
    """
    parts = []
    for tile_index in tile_indices:
        rs, cs = layout.tile_slices(tile_index)
        row_start, row_stop = rs.start, rs.stop
        if row_limit is not None:
            row_start, row_stop = rs.start + row_limit[0], rs.start + row_limit[1]
        rows = np.arange(row_start, row_stop, dtype=np.int64)
        cols = np.arange(cs.start, cs.stop, dtype=np.int64)
        parts.append((rows[:, None] * layout.n + cols[None, :]).reshape(-1))
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


def gather_tiles_indexed(matrix: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Index-based fast path of :func:`gather_tiles`.

    ``indices`` is the permutation from :func:`tile_flat_indices`; the result
    is element-for-element identical to the per-tile reference.
    """
    return np.take(matrix, indices)


def scatter_tiles_indexed(matrix: np.ndarray, indices: np.ndarray, buffer: np.ndarray) -> None:
    """Index-based fast path of :func:`scatter_tiles` (in-place)."""
    if buffer.size != indices.size:
        raise ValueError(
            f"buffer has {buffer.size} elements but the index permutation covers {indices.size}"
        )
    np.put(matrix, indices, buffer)


def split_tile_rows(tile: np.ndarray, parts: int) -> list[np.ndarray]:
    """Split a tile along its rows into ``parts`` equal sub-tiles.

    Used by the ReduceScatter reordering: the ``k``-th sub-tile of every tile
    ends up on GPU ``k``, so every matrix row stays whole on a single GPU.
    """
    rows = tile.shape[0]
    if parts <= 0:
        raise ValueError("parts must be positive")
    if rows % parts != 0:
        raise ValueError(
            f"tile with {rows} rows cannot be split into {parts} equal sub-tiles"
        )
    step = rows // parts
    return [np.ascontiguousarray(tile[k * step : (k + 1) * step]) for k in range(parts)]


def _check_matrix(matrix: np.ndarray, layout: TileLayout) -> None:
    if matrix.ndim != 2 or matrix.shape != (layout.m, layout.n):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match layout "
            f"({layout.m}, {layout.n})"
        )
