"""Tile grid geometry of a GEMM output matrix.

A GEMM ``A[M, K] @ B[K, N] = C[M, N]`` is executed tile by tile: the output
matrix ``C`` is partitioned into a grid of ``tile_m x tile_n`` blocks and each
block is assigned to one streaming multiprocessor (SM).  Tiles are identified
by a *tile index* in row-major order over the grid::

    tile_index = row_block * grid_n + col_block

The layout supports ragged edges (``M`` or ``N`` not divisible by the tile
size); edge tiles are simply smaller.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TileLayout:
    """Geometry of the tile grid covering an ``M x N`` matrix.

    Parameters
    ----------
    m, n:
        Matrix dimensions (rows, columns).
    tile_m, tile_n:
        Tile dimensions.  Tiles at the bottom/right edge may be smaller when
        ``m``/``n`` is not a multiple of the tile size.
    """

    m: int
    n: int
    tile_m: int
    tile_n: int

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0:
            raise ValueError(f"matrix dims must be positive, got {self.m}x{self.n}")
        if self.tile_m <= 0 or self.tile_n <= 0:
            raise ValueError(
                f"tile dims must be positive, got {self.tile_m}x{self.tile_n}"
            )

    # -- grid geometry -----------------------------------------------------

    @property
    def grid_m(self) -> int:
        """Number of tile rows."""
        return -(-self.m // self.tile_m)

    @property
    def grid_n(self) -> int:
        """Number of tile columns."""
        return -(-self.n // self.tile_n)

    @property
    def num_tiles(self) -> int:
        """Total number of tiles in the grid."""
        return self.grid_m * self.grid_n

    # -- index conversions -------------------------------------------------

    def tile_coords(self, tile_index: int) -> tuple[int, int]:
        """Return ``(row_block, col_block)`` of a tile index."""
        self._check_index(tile_index)
        return divmod(tile_index, self.grid_n)

    def tile_index(self, row_block: int, col_block: int) -> int:
        """Return the tile index of grid coordinates ``(row_block, col_block)``."""
        if not (0 <= row_block < self.grid_m and 0 <= col_block < self.grid_n):
            raise IndexError(
                f"tile coords ({row_block}, {col_block}) outside "
                f"{self.grid_m}x{self.grid_n} grid"
            )
        return row_block * self.grid_n + col_block

    def tile_slices(self, tile_index: int) -> tuple[slice, slice]:
        """Return the ``(row_slice, col_slice)`` of a tile within the matrix."""
        row_block, col_block = self.tile_coords(tile_index)
        r0 = row_block * self.tile_m
        c0 = col_block * self.tile_n
        return slice(r0, min(r0 + self.tile_m, self.m)), slice(
            c0, min(c0 + self.tile_n, self.n)
        )

    def tile_shape(self, tile_index: int) -> tuple[int, int]:
        """Return the ``(rows, cols)`` shape of a tile (edge tiles are smaller)."""
        rs, cs = self.tile_slices(tile_index)
        return rs.stop - rs.start, cs.stop - cs.start

    def tile_elements(self, tile_index: int) -> int:
        """Number of elements in a tile."""
        rows, cols = self.tile_shape(tile_index)
        return rows * cols

    def tile_row_range(self, tile_index: int) -> range:
        """Global row indices covered by a tile."""
        rs, _ = self.tile_slices(tile_index)
        return range(rs.start, rs.stop)

    def tiles_in_row_block(self, row_block: int) -> list[int]:
        """All tile indices that share a tile row (``row_block``)."""
        if not 0 <= row_block < self.grid_m:
            raise IndexError(f"row_block {row_block} outside grid of {self.grid_m}")
        base = row_block * self.grid_n
        return list(range(base, base + self.grid_n))

    def row_block_of_row(self, row: int) -> int:
        """Tile row containing global matrix row ``row``."""
        if not 0 <= row < self.m:
            raise IndexError(f"row {row} outside matrix of {self.m} rows")
        return row // self.tile_m

    # -- helpers -----------------------------------------------------------

    def is_uniform(self) -> bool:
        """True when every tile has the full ``tile_m x tile_n`` shape."""
        return self.m % self.tile_m == 0 and self.n % self.tile_n == 0

    def all_tile_indices(self) -> list[int]:
        """Tile indices in row-major (address) order."""
        return list(range(self.num_tiles))

    def _check_index(self, tile_index: int) -> None:
        if not 0 <= tile_index < self.num_tiles:
            raise IndexError(
                f"tile index {tile_index} outside grid of {self.num_tiles} tiles"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TileLayout({self.m}x{self.n}, tile {self.tile_m}x{self.tile_n}, "
            f"grid {self.grid_m}x{self.grid_n}, {self.num_tiles} tiles)"
        )
