"""Pipeline-parallel microbatch schedules: GPipe, 1F1B and zero-bubble.

A schedule assigns every per-microbatch *cell* -- forward (``F``),
input-gradient backward (``B``) and weight-gradient (``W``) -- a position in
one stage's serial execution order.  Timing then follows from greedy list
scheduling: a cell starts when its stage is free *and* its cross-stage
dependencies (plus the inter-stage P2P transfer) have arrived, which is what
:func:`Schedule.replay` computes on the event engine and
:func:`critical_path` recomputes independently from the cell DAG.

The three generators:

* :func:`gpipe_schedule` -- all forwards, then all backwards.  GPipe as
  published relies on activation *recomputation* (only stage-boundary
  activations are stored), so each backward cell carries an extra forward
  pass; that recomputation is overhead, not useful work, which is why GPipe's
  bubble ratio exceeds 1F1B's even at equal memory-free step structure.
* :func:`one_f_one_b_schedule` -- PipeDream-flush / Megatron 1F1B: stage
  ``s`` of ``S`` runs ``min(M, S - s - 1)`` warmup forwards, alternates
  forward/backward in the steady state, and drains backwards in the
  cooldown.  Backward cells bundle dgrad + wgrad.
* :func:`zero_bubble_schedule` -- ZB-H1-style: the backward is split into a
  ``B`` cell (input gradients -- the only part the upstream stage waits for)
  and a deferred ``W`` cell (weight gradients).  ``B``/``F`` keep the 1F1B
  order; the ``W`` cells are placed by a clairvoyant list scheduler that
  searches a small family of placement policies (fill bubbles without
  delaying F/B, fill every idle gap eagerly, run W inline after its B) and
  keeps the fastest.  The inline member reproduces 1F1B's placement with a
  split backward -- upstream stages stop waiting for wgrad work -- so the
  selected step time, and therefore the bubble ratio, is never worse than
  1F1B's.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import fsum

from repro.gpu.kernels import KernelCategory
from repro.sim.replay import ReplayResult, ReplayTask, replay_tasks

__all__ = [
    "Cell",
    "StageCostVector",
    "Schedule",
    "gpipe_schedule",
    "one_f_one_b_schedule",
    "zero_bubble_schedule",
    "generate_schedule",
    "critical_path",
    "stage_peak_inflight",
    "KNOWN_SCHEDULES",
]

#: Trace/category colour per cell kind.
_CELL_CATEGORIES = {
    "F": KernelCategory.GEMM,
    "B": KernelCategory.OTHER,
    "W": KernelCategory.ELEMENTWISE,
}


@dataclass(frozen=True)
class StageCostVector:
    """Realized per-microbatch cell durations of one stage (one method)."""

    forward: float
    dgrad: float
    wgrad: float

    def __post_init__(self) -> None:
        for name in ("forward", "dgrad", "wgrad"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} duration must be non-negative")

    @property
    def backward(self) -> float:
        """The bundled dgrad + wgrad backward cell of GPipe / 1F1B."""
        return self.dgrad + self.wgrad

    @property
    def useful(self) -> float:
        """True per-microbatch compute (excludes any recomputation)."""
        return self.forward + self.dgrad + self.wgrad


@dataclass(frozen=True)
class Cell:
    """One scheduled unit: a microbatch's F/B/W pass through one stage."""

    stage: int
    microbatch: int
    kind: str  # "F" | "B" | "W"
    duration: float

    @property
    def name(self) -> str:
        return f"{self.kind}{self.microbatch}@s{self.stage}"


@dataclass(frozen=True)
class Schedule:
    """Per-stage execution orders plus everything timing depends on."""

    name: str
    num_stages: int
    num_microbatches: int
    #: Serial execution order of each stage (index = stage).
    stage_orders: tuple[tuple[Cell, ...], ...]
    fwd_delay: float  # P2P transfer of forward activations between stages
    bwd_delay: float  # P2P transfer of backward gradients between stages
    #: Non-useful (recomputation) work per stage per microbatch, carried
    #: inside backward cells (GPipe only).
    recompute: tuple[float, ...] = ()
    #: True when backward is split into B + W cells (zero-bubble).
    split_backward: bool = False

    def cells(self) -> list[Cell]:
        return [cell for order in self.stage_orders for cell in order]

    def dependencies(self, cell: Cell) -> list[tuple[str, float]]:
        """Cross-stage / cross-kind dependency edges of one cell."""
        deps: list[tuple[str, float]] = []
        last = self.num_stages - 1
        if cell.kind == "F":
            if cell.stage > 0:
                deps.append((f"F{cell.microbatch}@s{cell.stage - 1}", self.fwd_delay))
        elif cell.kind == "B":
            deps.append((f"F{cell.microbatch}@s{cell.stage}", 0.0))
            if cell.stage < last:
                deps.append((f"B{cell.microbatch}@s{cell.stage + 1}", self.bwd_delay))
        elif cell.kind == "W":
            deps.append((f"B{cell.microbatch}@s{cell.stage}", 0.0))
        else:  # pragma: no cover - Cell.kind is internal
            raise ValueError(f"unknown cell kind {cell.kind!r}")
        return deps

    def tasks(self) -> list[ReplayTask]:
        """The schedule as replayable tasks (one serial resource per stage)."""
        return [
            ReplayTask(
                name=cell.name,
                resource=f"stage{cell.stage}",
                duration=cell.duration,
                deps=tuple(self.dependencies(cell)),
                category=_CELL_CATEGORIES[cell.kind],
            )
            for cell in self.cells()
        ]

    def replay(self, record_trace: bool = False, fast: bool = True) -> ReplayResult:
        """Greedy list-scheduled execution (vectorized sweep by default).

        ``fast=False`` replays event by event on the engine; the results are
        bit-identical either way (and recording a trace always uses the
        event-by-event path, whose event order defines the stream layout).
        """
        return replay_tasks(self.tasks(), record_trace=record_trace, fast=fast)

    def useful_work(self) -> float:
        """Total F+B+W compute across all stages (recomputation excluded)."""
        overhead = list(self.recompute) or [0.0] * self.num_stages
        return fsum(
            cell.duration - (overhead[cell.stage] if cell.kind == "B" else 0.0)
            for cell in self.cells()
        )


def _check_costs(stages: tuple[StageCostVector, ...], microbatches: int) -> None:
    if not stages:
        raise ValueError("a schedule needs at least one stage")
    if microbatches < 1:
        raise ValueError("microbatches must be >= 1")


def gpipe_schedule(
    stages: tuple[StageCostVector, ...],
    microbatches: int,
    fwd_delay: float = 0.0,
    bwd_delay: float = 0.0,
) -> Schedule:
    """GPipe: all forwards, then all backwards, with activation recompute."""
    _check_costs(stages, microbatches)
    orders = []
    for index, cost in enumerate(stages):
        order = [Cell(index, m, "F", cost.forward) for m in range(microbatches)]
        # Rematerialisation: the backward cell re-runs the stage's forward
        # before computing dgrad + wgrad (GPipe stores only boundary
        # activations).
        order += [
            Cell(index, m, "B", cost.forward + cost.backward) for m in range(microbatches)
        ]
        orders.append(tuple(order))
    return Schedule(
        name="gpipe",
        num_stages=len(stages),
        num_microbatches=microbatches,
        stage_orders=tuple(orders),
        fwd_delay=fwd_delay,
        bwd_delay=bwd_delay,
        recompute=tuple(cost.forward for cost in stages),
    )


def _one_f_one_b_orders(num_stages: int, microbatches: int) -> list[list[tuple[str, int]]]:
    """The (kind, microbatch) order of every stage under 1F1B."""
    orders = []
    for stage in range(num_stages):
        warmup = min(microbatches, num_stages - stage - 1)
        order: list[tuple[str, int]] = [("F", m) for m in range(warmup)]
        for i in range(microbatches - warmup):
            order.append(("F", warmup + i))
            order.append(("B", i))
        order += [("B", m) for m in range(microbatches - warmup, microbatches)]
        orders.append(order)
    return orders


def one_f_one_b_schedule(
    stages: tuple[StageCostVector, ...],
    microbatches: int,
    fwd_delay: float = 0.0,
    bwd_delay: float = 0.0,
) -> Schedule:
    """1F1B (PipeDream-flush): warmup forwards, steady 1F1B, cooldown."""
    _check_costs(stages, microbatches)
    orders = []
    for stage, order in enumerate(_one_f_one_b_orders(len(stages), microbatches)):
        cost = stages[stage]
        orders.append(
            tuple(
                Cell(stage, m, kind, cost.forward if kind == "F" else cost.backward)
                for kind, m in order
            )
        )
    return Schedule(
        name="1f1b",
        num_stages=len(stages),
        num_microbatches=microbatches,
        stage_orders=tuple(orders),
        fwd_delay=fwd_delay,
        bwd_delay=bwd_delay,
    )


#: W-placement policies the zero-bubble generator searches over (in
#: tie-break order).  ``defer`` fills gaps only when the W provably cannot
#: delay the next F/B cell and drains the rest after the cooldown; ``eager``
#: fills every idle gap even when the W overshoots into the next cell's
#: start (keeping the stage busy at the cost of a small delay); ``inline``
#: runs each W directly after its B, which reproduces 1F1B's placement but
#: with the split backward -- downstream stages no longer wait for the wgrad
#: part, so its step time never exceeds 1F1B's.
_ZB_POLICIES = ("defer", "eager", "inline")


def _zero_bubble_candidate(
    stages: tuple[StageCostVector, ...],
    microbatches: int,
    fwd_delay: float,
    bwd_delay: float,
    policy: str,
) -> tuple[float, Schedule]:
    """List-schedule the split backward under one W-placement policy."""
    num_stages = len(stages)
    last = num_stages - 1
    fb_orders = _one_f_one_b_orders(num_stages, microbatches)

    ends: dict[tuple[str, int, int], float] = {}  # (kind, stage, mb) -> end
    free = [0.0] * num_stages
    heads = [0] * num_stages
    pending_w: list[list[int]] = [[] for _ in range(num_stages)]
    orders: list[list[Cell]] = [[] for _ in range(num_stages)]

    def place(stage: int, kind: str, mb: int, duration: float, start: float) -> None:
        orders[stage].append(Cell(stage, mb, kind, duration))
        ends[(kind, stage, mb)] = start + duration
        free[stage] = start + duration

    remaining = sum(len(order) for order in fb_orders)
    while remaining:
        progressed = False
        for stage in range(num_stages):
            cost = stages[stage]
            while heads[stage] < len(fb_orders[stage]):
                kind, mb = fb_orders[stage][heads[stage]]
                if kind == "F":
                    dep_keys = [("F", stage - 1, mb)] if stage > 0 else []
                    delays = [fwd_delay]
                    duration = cost.forward
                else:
                    dep_keys = [("F", stage, mb)]
                    delays = [0.0]
                    if stage < last:
                        dep_keys.append(("B", stage + 1, mb))
                        delays.append(bwd_delay)
                    duration = cost.dgrad
                if any(key not in ends for key in dep_keys):
                    break
                ready = max(
                    (ends[key] + delay for key, delay in zip(dep_keys, delays)),
                    default=0.0,
                )
                # Fill the gap in front of this cell with deferred W work:
                # `defer` only when the W provably cannot delay the cell,
                # `eager` whenever the stage would otherwise idle (inline
                # keeps no pool, so its loop never runs).
                while pending_w[stage] and (
                    free[stage] + cost.wgrad <= ready
                    if policy == "defer"
                    else free[stage] < ready
                ):
                    place(stage, "W", pending_w[stage].pop(0), cost.wgrad, free[stage])
                place(stage, kind, mb, duration, max(free[stage], ready))
                if kind == "B":
                    if policy == "inline":
                        place(stage, "W", mb, cost.wgrad, free[stage])
                    else:
                        pending_w[stage].append(mb)
                heads[stage] += 1
                remaining -= 1
                progressed = True
        if not progressed:  # pragma: no cover - the 1F1B order is feasible
            raise RuntimeError("zero-bubble generation stalled (infeasible order)")
    for stage in range(num_stages):
        for mb in pending_w[stage]:
            place(stage, "W", mb, stages[stage].wgrad, free[stage])
    schedule = Schedule(
        name="zero-bubble",
        num_stages=num_stages,
        num_microbatches=microbatches,
        stage_orders=tuple(tuple(order) for order in orders),
        fwd_delay=fwd_delay,
        bwd_delay=bwd_delay,
        split_backward=True,
    )
    return max(ends.values(), default=0.0), schedule


def zero_bubble_schedule(
    stages: tuple[StageCostVector, ...],
    microbatches: int,
    fwd_delay: float = 0.0,
    bwd_delay: float = 0.0,
) -> Schedule:
    """Zero-bubble (ZB-H1-style): split backward, W cells fill the bubbles.

    F and B keep the 1F1B order (B now carries only the input gradients, so
    the cross-stage backward chain is shorter); the W cells are placed by a
    clairvoyant list scheduler that searches the small family of placement
    policies in :data:`_ZB_POLICIES` and keeps the fastest schedule.  The
    ``inline`` member of that family strictly dominates 1F1B (same placement,
    but upstream stages stop waiting for wgrad work), so the selected step
    time -- and therefore the bubble ratio -- is never worse than 1F1B's.
    """
    _check_costs(stages, microbatches)
    best: tuple[float, Schedule] | None = None
    for policy in _ZB_POLICIES:
        step, candidate = _zero_bubble_candidate(
            stages, microbatches, fwd_delay, bwd_delay, policy
        )
        if best is None or step < best[0]:
            best = (step, candidate)
    return best[1]


#: Schedule slug -> generator, in canonical (bubble-decreasing) order.
KNOWN_SCHEDULES = {
    "gpipe": gpipe_schedule,
    "1f1b": one_f_one_b_schedule,
    "zero-bubble": zero_bubble_schedule,
}


def generate_schedule(
    name: str,
    stages: tuple[StageCostVector, ...],
    microbatches: int,
    fwd_delay: float = 0.0,
    bwd_delay: float = 0.0,
) -> Schedule:
    """Generate a named schedule over per-stage cell costs."""
    try:
        generator = KNOWN_SCHEDULES[name]
    except KeyError:
        raise KeyError(
            f"unknown schedule {name!r}; known: {sorted(KNOWN_SCHEDULES)}"
        ) from None
    return generator(stages, microbatches, fwd_delay=fwd_delay, bwd_delay=bwd_delay)


def stage_peak_inflight(schedule: Schedule) -> tuple[int, ...]:
    """Peak number of microbatches whose activations a stage holds at once.

    Walks each stage's serial order: a forward cell admits one microbatch's
    activations (``+1``); they are freed once the weight gradient no longer
    needs them -- at the ``W`` cell when the backward is split (zero-bubble
    defers wgrad, so activations live *longer* than under 1F1B), at the
    bundled ``B`` cell otherwise.  The stage order is a valid serialisation
    of the replayed execution, so the walk's running peak is exactly the
    schedule's activation high-water mark in microbatch units; the planner
    turns it into bytes (GPipe's recomputation stores only the stage-boundary
    activation, the other schedules keep every layer's).
    """
    peaks = []
    for order in schedule.stage_orders:
        live = peak = 0
        release = "W" if schedule.split_backward else "B"
        for cell in order:
            if cell.kind == "F":
                live += 1
                peak = max(peak, live)
            elif cell.kind == release:
                live -= 1
        peaks.append(peak)
    return tuple(peaks)


def critical_path(schedule: Schedule) -> float:
    """Step time recomputed independently from the cell DAG.

    Kahn-style longest path over the union of the cross-stage dependency
    edges and the per-stage serial-order edges -- no event engine, no
    resource bookkeeping.  Must equal ``schedule.replay().makespan`` exactly
    (the property suite asserts bit-equality).
    """
    cells = {cell.name: cell for cell in schedule.cells()}
    edges: dict[str, list[tuple[str, float]]] = {name: [] for name in cells}
    indegree = dict.fromkeys(cells, 0)
    for cell in cells.values():
        for dep, delay in schedule.dependencies(cell):
            edges[dep].append((cell.name, delay))
            indegree[cell.name] += 1
    for order in schedule.stage_orders:
        for earlier, later in zip(order, order[1:]):
            edges[earlier.name].append((later.name, 0.0))
            indegree[later.name] += 1

    start = dict.fromkeys(cells, 0.0)
    queue = [name for name, degree in indegree.items() if degree == 0]
    finished: dict[str, float] = {}
    while queue:
        name = queue.pop()
        end = start[name] + cells[name].duration
        finished[name] = end
        for successor, delay in edges[name]:
            start[successor] = max(start[successor], end + delay)
            indegree[successor] -= 1
            if indegree[successor] == 0:
                queue.append(successor)
    if len(finished) != len(cells):
        raise RuntimeError("schedule DAG is cyclic")
    return max(finished.values(), default=0.0)
