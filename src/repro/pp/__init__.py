"""Pipeline-parallel scheduling on top of the overlap cost model.

The paper prices overlap for a single rank's operator stream; its Table-4
workloads run under pipeline parallelism in practice, where inter-stage
*bubbles* -- not just intra-operator communication exposure -- dominate step
time.  This package adds that axis:

* :mod:`repro.pp.schedule` -- microbatch schedules over a stage partition:
  GPipe (all-forward / all-backward with activation recomputation), 1F1B
  (PipeDream-flush warmup/steady/cooldown) and a zero-bubble schedule that
  splits the backward pass into input-gradient (B) and weight-gradient (W)
  cells and fills pipeline bubbles with deferred W work (ZB-H1-style);
* :mod:`repro.pp.pricing` -- per-stage forward/dgrad/wgrad cell costs, every
  operator priced through the shared plan store
  (:class:`~repro.plans.PlanCache`) exactly as ``repro e2e`` prices it, plus
  the inter-stage P2P transfer model;
* :mod:`repro.pp.estimator` -- replays each schedule on the event engine
  (:mod:`repro.sim.replay`) under non-overlap / FlashOverlap /
  perfect-overlap pricing and reports per-stage timelines, bubble ratios and
  step latencies;
* :mod:`repro.pp.report` -- multi-workload aggregation, tables and the
  JSON/Chrome-trace exports behind ``repro pp``.
"""

from repro.pp.estimator import PipelineEstimate, PipelineEstimator, ScheduleEstimate
from repro.pp.pricing import MethodCosts, PipelineCosts, StageCosts, price_pipeline
from repro.pp.report import PipelineReport, estimate_pipelines
from repro.pp.schedule import (
    KNOWN_SCHEDULES,
    Cell,
    Schedule,
    StageCostVector,
    critical_path,
    generate_schedule,
    gpipe_schedule,
    one_f_one_b_schedule,
    zero_bubble_schedule,
)

__all__ = [
    "KNOWN_SCHEDULES",
    "Cell",
    "Schedule",
    "StageCostVector",
    "critical_path",
    "generate_schedule",
    "gpipe_schedule",
    "one_f_one_b_schedule",
    "zero_bubble_schedule",
    "MethodCosts",
    "PipelineCosts",
    "StageCosts",
    "price_pipeline",
    "PipelineEstimate",
    "PipelineEstimator",
    "ScheduleEstimate",
    "PipelineReport",
    "estimate_pipelines",
]
