"""Reporting for pipeline-schedule estimates (``repro pp``).

One :class:`PipelineReport` aggregates the estimates of several workloads run
through one shared plan store: per-schedule step latencies under the three
execution methods, bubble ratios, per-stage busy/idle timelines and the plan
store's cross-run reuse stats.  ``to_dict()`` is JSON-stable -- identical runs
produce byte-identical reports, which is what the committed golden fixtures
under ``tests/golden/pp/`` diff against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.reporting import ReportMixin, format_table
from repro.comm.topology import Topology
from repro.core.config import DEFAULT_SETTINGS, OverlapSettings
from repro.gpu.device import A800, GPUSpec
from repro.pp.estimator import PipelineEstimate, PipelineEstimator
from repro.pp.schedule import KNOWN_SCHEDULES
from repro.workloads.pipeline import build_pipeline_workload

__all__ = ["PipelineReport", "estimate_pipelines"]


@dataclass
class PipelineReport(ReportMixin):
    """Estimates of several pipeline workloads plus shared plan-store stats."""

    estimates: list[PipelineEstimate]
    plan_stats: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def by_name(self) -> dict[str, PipelineEstimate]:
        return {estimate.name: estimate for estimate in self.estimates}

    # -- rendering -------------------------------------------------------------------

    def table(self, estimate: PipelineEstimate) -> str:
        """Per-schedule step latencies and bubble ratios of one workload."""
        rows = []
        for name, schedule in estimate.schedules.items():
            rows.append(
                [
                    name,
                    f"{schedule.methods['non-overlap'].step_latency * 1e3:.3f}",
                    f"{schedule.methods['overlap'].step_latency * 1e3:.3f}",
                    f"{schedule.methods['theoretical'].step_latency * 1e3:.3f}",
                    f"{schedule.bubble_ratio * 100:.1f}%",
                    f"{schedule.speedup:.3f}x",
                ]
            )
        return format_table(
            [
                "schedule",
                "non-overlap (ms)",
                "FlashOverlap (ms)",
                "bound (ms)",
                "bubble",
                "speedup",
            ],
            rows,
            title=(
                f"{estimate.name}: {estimate.num_stages} stages "
                f"{estimate.stage_layers}, {estimate.microbatches} microbatches"
            ),
        )

    def stage_table(self, estimate: PipelineEstimate, schedule: str) -> str:
        """Per-stage busy/idle timeline of one schedule (FlashOverlap arm)."""
        result = estimate.schedules[schedule].methods["overlap"]
        rows = []
        for stage, (layers, busy, idle) in enumerate(
            zip(estimate.stage_layers, result.stage_busy, result.stage_idle)
        ):
            rows.append(
                [
                    f"stage{stage}",
                    layers,
                    f"{busy * 1e3:.3f}",
                    f"{idle * 1e3:.3f}",
                    f"{idle / result.step_latency * 100:.1f}%",
                ]
            )
        return format_table(
            ["stage", "layers", "busy (ms)", "idle (ms)", "idle share"],
            rows,
            title=f"{schedule}: per-stage timeline (FlashOverlap)",
        )

    def summary_table(self) -> str:
        """The headline rendering of the ``repro.api`` report protocol."""
        return "\n\n".join(self.table(estimate) for estimate in self.estimates)

    def to_dict(self) -> dict:
        return self._with_observability({
            "meta": self.meta,
            "workloads": {estimate.name: estimate.to_dict() for estimate in self.estimates},
            "plan_store": self.plan_stats,
        })


def estimate_pipelines(
    names: list[str],
    stages: int,
    microbatches: int,
    schedules: tuple[str, ...] = tuple(KNOWN_SCHEDULES),
    tokens: int | None = None,
    device: GPUSpec = A800,
    topology: Topology | None = None,
    layers: int | None = None,
    settings: OverlapSettings = DEFAULT_SETTINGS,
    estimator: PipelineEstimator | None = None,
    reuse: bool = True,
    record_trace: bool = False,
    partition: tuple[int, ...] | None = None,
    fast: bool = True,
) -> PipelineReport:
    """Estimate the named registry workloads under pipeline parallelism.

    All workloads run through one shared plan store (cross-workload reuse);
    every knob applies to each workload.  ``partition`` overrides the
    balanced stage split with an explicit per-stage layer count (what a
    replayed planner JSON carries).  ``fast=False`` replays the schedules
    event by event instead of through the vectorized sweep (bit-identical).
    """
    estimator = estimator or PipelineEstimator(settings, reuse=reuse, fast=fast)
    estimates = []
    for name in names:
        workload = build_pipeline_workload(
            name,
            stages=stages,
            microbatches=microbatches,
            tokens=tokens,
            device=device,
            topology=topology,
            layers=layers,
            settings=settings,
            partition=partition,
        )
        estimates.append(estimator.estimate(workload, schedules, record_trace=record_trace))
    meta = {
        "workloads": names,
        "stages": stages,
        "microbatches": microbatches,
        "schedules": list(schedules),
        "tokens": tokens,
        "layers": layers,
        "device": device.name,
        "seed": settings.seed,
        "reuse": reuse,
    }
    # Only an explicit partition appears in the meta -- the default balanced
    # split keeps the report (and the committed golden fixtures) unchanged.
    if partition is not None:
        meta["partition"] = list(partition)
    return PipelineReport(
        estimates=estimates,
        plan_stats=estimator.plan_store.stats(),
        meta=meta,
    )
