"""Pipeline estimator: schedules, replays and scores one pipeline workload.

For every requested schedule the estimator generates the cell order three
times -- once per execution method (non-overlap baseline, FlashOverlap,
perfect-overlap bound), because cell durations differ per method and the
zero-bubble W placement depends on them -- replays each on the event engine
(:mod:`repro.sim.replay`) and derives:

* **step latency** -- the replay makespan of one training step;
* **bubble ratio** -- ``1 - useful_work / (stages * step)`` where useful
  work counts F + B + W compute only (GPipe's recomputation is overhead, so
  its bubble ratio stays above 1F1B's even when their step structures match);
* **per-stage timelines** -- busy/idle split and cell spans, exportable as a
  Chrome trace (one thread per stage).

The embedded :class:`~repro.e2e.estimator.WorkloadEstimate` of the microbatch
stream is computed first, through the same estimator and plan store, so a
``--stages 1 --microbatches 1`` pipeline run reports totals bit-identical to
``repro e2e`` on the same workload (asserted by the differential tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.config import DEFAULT_SETTINGS, OverlapSettings
from repro.e2e.estimator import EndToEndEstimator, WorkloadEstimate
from repro.pp.pricing import METHODS, PipelineCosts, price_pipeline
from repro.pp.schedule import (
    KNOWN_SCHEDULES,
    Schedule,
    generate_schedule,
    stage_peak_inflight,
)
from repro.sim.replay import ReplayResult
from repro.sim.trace import Trace
from repro.workloads.pipeline import PipelineWorkload

__all__ = ["ScheduleMethodResult", "ScheduleEstimate", "PipelineEstimate", "PipelineEstimator"]


@dataclass(frozen=True)
class ScheduleMethodResult:
    """One schedule replayed under one execution method."""

    method: str
    step_latency: float
    bubble_ratio: float
    useful_work: float
    #: Per-stage busy time (cells executing, recomputation included).
    stage_busy: tuple[float, ...]
    #: Per-stage idle time within the step (step - busy).
    stage_idle: tuple[float, ...]
    #: Per-stage peak count of in-flight microbatch activations
    #: (:func:`~repro.pp.schedule.stage_peak_inflight`) -- what the planner
    #: sizes peak activation memory from.
    stage_peak_microbatches: tuple[int, ...] = ()

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "step_latency": self.step_latency,
            "bubble_ratio": self.bubble_ratio,
            "useful_work": self.useful_work,
            "stage_busy": list(self.stage_busy),
            "stage_idle": list(self.stage_idle),
            "stage_peak_microbatches": list(self.stage_peak_microbatches),
        }


@dataclass
class ScheduleEstimate:
    """One schedule's results across all execution methods."""

    name: str
    methods: dict[str, ScheduleMethodResult]
    num_cells: int
    #: Replay trace of the FlashOverlap arm (one stream per stage).
    trace: Trace | None = None

    @property
    def step_latency(self) -> float:
        """The FlashOverlap step latency (the headline number)."""
        return self.methods["overlap"].step_latency

    @property
    def bubble_ratio(self) -> float:
        return self.methods["overlap"].bubble_ratio

    @property
    def speedup(self) -> float:
        """FlashOverlap step speedup over the non-overlap execution."""
        return self.methods["non-overlap"].step_latency / self.step_latency

    @property
    def bound_speedup(self) -> float:
        return (
            self.methods["non-overlap"].step_latency
            / self.methods["theoretical"].step_latency
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "num_cells": self.num_cells,
            "speedup": self.speedup,
            "bound_speedup": self.bound_speedup,
            "methods": {method: result.to_dict() for method, result in self.methods.items()},
        }


@dataclass
class PipelineEstimate:
    """One pipeline workload across all requested schedules."""

    name: str
    stage_layers: tuple[int, ...]
    microbatches: int
    microbatch_tokens: int | None
    activation_bytes: float
    fwd_delay: float
    bwd_delay: float
    synthesized_backward: bool
    schedules: dict[str, ScheduleEstimate]
    #: The microbatch stream estimated end-to-end through the same plan
    #: store (``repro e2e`` of one microbatch; its totals are the
    #: no-pipelining reference and the S=1/M=1 differential anchor).
    microbatch_estimate: WorkloadEstimate | None = None
    plan_stats: dict = field(default_factory=dict)

    @property
    def num_stages(self) -> int:
        return len(self.stage_layers)

    def bubble_ratios(self) -> dict[str, float]:
        return {name: estimate.bubble_ratio for name, estimate in self.schedules.items()}

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "stage_layers": list(self.stage_layers),
            "microbatches": self.microbatches,
            "microbatch_tokens": self.microbatch_tokens,
            "activation_bytes": self.activation_bytes,
            "fwd_delay": self.fwd_delay,
            "bwd_delay": self.bwd_delay,
            "synthesized_backward": self.synthesized_backward,
            "schedules": {name: est.to_dict() for name, est in self.schedules.items()},
            "plan_stats": self.plan_stats,
        }
        if self.microbatch_estimate is not None:
            payload["e2e"] = self.microbatch_estimate.to_dict()
        return payload


class PipelineEstimator:
    """Estimate pipeline schedules through a shared plan store.

    Like :class:`~repro.e2e.estimator.EndToEndEstimator` (which it embeds and
    shares its plan store with), one estimator instance reuses tuned plans
    across workloads, schedules and stage/microbatch-count scans; the
    reported latencies are bit-identical with reuse disabled.
    """

    def __init__(
        self,
        settings: OverlapSettings = DEFAULT_SETTINGS,
        estimator: EndToEndEstimator | None = None,
        reuse: bool = True,
        warm_start=None,
        fast: bool = True,
    ) -> None:
        self.settings = settings
        self.e2e = estimator or EndToEndEstimator(settings, reuse=reuse, warm_start=warm_start)
        #: Replay schedules through the vectorized sweep (bit-identical to
        #: the event-by-event reference; ``fast=False`` keeps the latter on
        #: the hot path, which `repro pp --no-fast` exercises in CI).
        self.fast = fast

    @property
    def plan_store(self):
        return self.e2e.plan_store

    def estimate(
        self,
        workload: PipelineWorkload,
        schedules: tuple[str, ...] = tuple(KNOWN_SCHEDULES),
        record_trace: bool = False,
    ) -> PipelineEstimate:
        with obs.span("pp.estimate", workload=workload.name):
            return self._estimate(workload, schedules, record_trace)

    def _estimate(
        self,
        workload: PipelineWorkload,
        schedules: tuple[str, ...],
        record_trace: bool,
    ) -> PipelineEstimate:
        if workload.settings != self.settings:
            raise ValueError(
                f"workload {workload.name!r} carries different OverlapSettings than "
                "the pipeline estimator; build both from the same settings"
            )
        hits_before = self.plan_store.hits
        misses_before = self.plan_store.misses
        # The microbatch stream first: its estimate sees the same fresh-store
        # hit/miss sequence `repro e2e` would, so the embedded report is
        # bit-identical to an e2e run of the same workload.
        microbatch_estimate = self.e2e.estimate(workload.microbatch)
        with obs.span("pp.price"):
            costs = price_pipeline(workload, self.e2e)

        estimates = {}
        for name in schedules:
            with obs.span("pp.schedule", schedule=name):
                estimates[name] = self._estimate_schedule(name, workload, costs, record_trace)
        lookups = (self.plan_store.hits - hits_before) + (
            self.plan_store.misses - misses_before
        )
        hits = self.plan_store.hits - hits_before
        return PipelineEstimate(
            name=workload.name,
            stage_layers=workload.stage_layers,
            microbatches=workload.microbatches,
            microbatch_tokens=workload.microbatch_tokens,
            activation_bytes=workload.activation_bytes,
            fwd_delay=costs.fwd_delay,
            bwd_delay=costs.bwd_delay,
            synthesized_backward=costs.synthesized_backward,
            schedules=estimates,
            microbatch_estimate=microbatch_estimate,
            plan_stats={
                "lookups": lookups,
                "hits": hits,
                "misses": self.plan_store.misses - misses_before,
                "hit_rate": hits / lookups if lookups else 0.0,
            },
        )

    def _estimate_schedule(
        self,
        name: str,
        workload: PipelineWorkload,
        costs: PipelineCosts,
        record_trace: bool,
    ) -> ScheduleEstimate:
        methods: dict[str, ScheduleMethodResult] = {}
        trace = None
        num_cells = 0
        for method in METHODS:
            schedule = generate_schedule(
                name,
                costs.vectors(method),
                workload.microbatches,
                fwd_delay=costs.fwd_delay,
                bwd_delay=costs.bwd_delay,
            )
            want_trace = record_trace and method == "overlap"
            result = schedule.replay(record_trace=want_trace, fast=self.fast)
            methods[method] = _score(schedule, result, method)
            num_cells = len(schedule.cells())
            if want_trace:
                trace = result.trace
        return ScheduleEstimate(name=name, methods=methods, num_cells=num_cells, trace=trace)


def _score(schedule: Schedule, result: ReplayResult, method: str) -> ScheduleMethodResult:
    useful = schedule.useful_work()
    step = result.makespan
    stages = [f"stage{index}" for index in range(schedule.num_stages)]
    # Nominal work, not stretched occupancy: under a straggling SpeedProfile
    # the slowed spans would otherwise count as busy and the idle split would
    # underreport the stall the fault introduced.
    busy = tuple(result.work[stage] for stage in stages)
    bubble = 1.0 - useful / (schedule.num_stages * step) if step > 0 else 0.0
    return ScheduleMethodResult(
        method=method,
        step_latency=step,
        bubble_ratio=bubble,
        useful_work=useful,
        stage_busy=busy,
        stage_idle=tuple(step - b for b in busy),
        stage_peak_microbatches=stage_peak_inflight(schedule),
    )
