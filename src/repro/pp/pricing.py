"""Per-stage cell costs: the plan store prices every pipeline operator.

A pipeline cell (forward / input-gradient / weight-gradient pass of one
microbatch through one stage) is a slice of the microbatch operator stream.
Each operator is resolved through the *same* shared
:class:`~repro.plans.PlanCache` the end-to-end estimator uses (via
:meth:`~repro.e2e.estimator.EndToEndEstimator.resolve_operator`), so pipeline
runs share tuned plans with ``repro e2e`` and with each other across stage /
microbatch-count scans, and every cell carries three prices: the non-overlap
baseline, the FlashOverlap execution and the perfect-overlap bound.

Operator classification follows the workload naming convention
(:mod:`repro.workloads.llm` / ``moe`` / ``t2v``):

* names starting with ``bwd-`` are backward operators; of those, names
  containing ``wgrad`` are weight-gradient (``W``) work, the rest (dgrad,
  backward attention, backward elementwise) are input-gradient (``B``) work;
* everything else is forward (``F``) work.

Forward-only streams (the inference workloads) have no backward operators;
pipeline-scheduling them synthesizes the standard training assumption --
input gradients cost one forward, weight gradients another (backward
~ 2x forward) -- and flags the estimate accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.bandwidth import AnalyticBandwidthCurve
from repro.e2e.estimator import EndToEndEstimator, OperatorEstimate
from repro.pp.schedule import StageCostVector
from repro.workloads.operators import OperatorInstance
from repro.workloads.pipeline import PipelineWorkload

__all__ = [
    "METHODS",
    "MethodCosts",
    "StageCosts",
    "PipelineCosts",
    "classify_operator",
    "p2p_transfer_seconds",
    "price_pipeline",
]

#: Execution methods every cell is priced under (report order).
METHODS = ("non-overlap", "overlap", "theoretical")


def classify_operator(op: OperatorInstance) -> str:
    """``"forward"`` / ``"dgrad"`` / ``"wgrad"`` from the naming convention."""
    if op.name.startswith("bwd-"):
        return "wgrad" if "wgrad" in op.name else "dgrad"
    return "forward"


@dataclass(frozen=True)
class MethodCosts:
    """One duration per execution method."""

    non_overlap: float = 0.0
    overlap: float = 0.0
    theoretical: float = 0.0

    def get(self, method: str) -> float:
        try:
            return getattr(self, method.replace("-", "_"))
        except AttributeError:
            raise KeyError(f"unknown method {method!r}; known: {METHODS}") from None

    def plus(self, estimate: OperatorEstimate) -> "MethodCosts":
        """Accumulate one operator's per-occurrence latencies (x count)."""
        return MethodCosts(
            non_overlap=self.non_overlap + estimate.non_overlap_latency * estimate.count,
            overlap=self.overlap + estimate.overlap_latency * estimate.count,
            theoretical=self.theoretical + estimate.theoretical_latency * estimate.count,
        )

    def scaled(self, factor: float) -> "MethodCosts":
        return MethodCosts(
            non_overlap=self.non_overlap * factor,
            overlap=self.overlap * factor,
            theoretical=self.theoretical * factor,
        )


@dataclass(frozen=True)
class StageCosts:
    """Per-microbatch cell costs of one stage (all methods)."""

    layers: int
    forward: MethodCosts
    dgrad: MethodCosts
    wgrad: MethodCosts

    def vector(self, method: str) -> StageCostVector:
        """The realized durations one schedule generation runs on."""
        return StageCostVector(
            forward=self.forward.get(method),
            dgrad=self.dgrad.get(method),
            wgrad=self.wgrad.get(method),
        )


@dataclass(frozen=True)
class PipelineCosts:
    """Everything schedule generation needs: stage costs + link delays."""

    stages: tuple[StageCosts, ...]
    fwd_delay: float
    bwd_delay: float
    #: True when the backward cells were synthesized from a forward-only
    #: stream (inference workloads; backward assumed ~ 2x forward).
    synthesized_backward: bool = False

    def vectors(self, method: str) -> tuple[StageCostVector, ...]:
        return tuple(stage.vector(method) for stage in self.stages)


def p2p_transfer_seconds(topology, nbytes: float) -> float:
    """One inter-stage point-to-point transfer: base latency + curve time.

    The stage boundary moves one microbatch's activation (or gradient)
    tensor over a single link of the topology; the effective bandwidth
    follows the same size-dependent curve the collectives use.  P2P
    transfers are not overlap targets (FlashOverlap prices GEMM +
    *collective* pairs), so the delay is identical under every method.
    """
    if topology is None or nbytes <= 0:
        return 0.0
    curve = AnalyticBandwidthCurve.for_topology(topology)
    return topology.base_latency_s + float(curve.transfer_time(nbytes))


def price_pipeline(workload: PipelineWorkload, estimator: EndToEndEstimator) -> PipelineCosts:
    """Price one pipeline workload's cells through the shared plan store."""
    per_kind = {"forward": MethodCosts(), "dgrad": MethodCosts(), "wgrad": MethodCosts()}
    for op in workload.microbatch.operators:
        kind = classify_operator(op)
        per_kind[kind] = per_kind[kind].plus(estimator.resolve_operator(op))

    synthesized = (
        per_kind["dgrad"] == MethodCosts() and per_kind["wgrad"] == MethodCosts()
    )
    if synthesized:
        per_kind["dgrad"] = per_kind["forward"]
        per_kind["wgrad"] = per_kind["forward"]

    stages = tuple(
        StageCosts(
            layers=layers,
            forward=per_kind["forward"].scaled(layers),
            dgrad=per_kind["dgrad"].scaled(layers),
            wgrad=per_kind["wgrad"].scaled(layers),
        )
        for layers in workload.stage_layers
    )
    delay = 0.0
    if workload.num_stages > 1:
        delay = p2p_transfer_seconds(workload.topology, workload.activation_bytes)
    return PipelineCosts(
        stages=stages,
        fwd_delay=delay,
        bwd_delay=delay,
        synthesized_backward=synthesized,
    )
