"""The public Python facade of the reproduction.

One function per CLI subcommand, all consuming the same
:class:`~repro.cluster.ClusterSpec` and all returning report objects that
share the :class:`~repro.analysis.reporting.ReportMixin` protocol
(``to_dict()`` / ``to_json()`` / ``summary_table()`` / ``save_json()``)::

    import repro.api as api

    report = api.estimate(["llama3-training"], smoke=True)
    print(report.summary_table())

    result = api.plan(cluster=api.ClusterSpec(gpus=8), smoke=True)
    result.winner.save("plan.json")

The CLI subcommands are thin wrappers over these functions -- ``--json``
output and ``to_dict()`` are the same payload by construction, which the
parity tests under ``tests/test_api.py`` assert per subcommand.

``smoke=True`` everywhere means "CI-sized defaults for any argument left at
``None``" and mirrors the corresponding ``--smoke`` flag bit-for-bit.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path

from repro import obs
from repro.cluster import ClusterSpec
from repro.core.config import OverlapSettings
from repro.e2e.report import EndToEndReport, estimate_models
from repro.pp.report import PipelineReport, estimate_pipelines
from repro.pp.schedule import KNOWN_SCHEDULES
from repro.serve.report import ServeReport
from repro.sweep.report import DEFAULT_GROUP_KEYS, SweepReport

__all__ = [
    "ClusterSpec",
    "EndToEndReport",
    "PipelineReport",
    "ServeReport",
    "SweepReport",
    "estimate",
    "plan",
    "pp",
    "serve",
    "sweep",
]

#: Default serving scenario; applied to arguments left at ``None``.  The
#: ``smoke`` variant is the shared ``repro.serve.simulator.SMOKE_SCENARIO``.
SERVE_DEFAULTS = {
    "rate": 32.0,
    "requests": 64,
    "distribution": "chat",
    "workload": "llama3-70b",
    "layers": 4,
    "max_batch_tokens": 4096,
    "max_batch_size": 32,
}

#: CI-sized ``pp`` scenario and the full-run defaults; applied to arguments
#: left at ``None``.
PP_SMOKE = {"workloads": ["llama3-training"], "stages": 2, "microbatches": 4, "layers": 4}
PP_DEFAULTS = {"stages": 4, "microbatches": 8}

#: CI-sized planner search space (the ``repro plan --smoke`` scenario).
PLAN_SMOKE = {
    "layers": 4,
    "tp_degrees": (2, 4, 8),
    "microbatch_counts": (2, 4, 8),
}


def _profiled(command: str, profile: bool, build):
    """Run ``build()`` under an observability session when ``profile`` is set.

    The report comes back with the profile snapshot attached
    (``report.profile`` / an ``observability`` section in ``to_dict()``).
    With ``profile=False`` the session is never opened, so every span and
    counter on the instrumented paths stays a no-op.
    """
    if not profile:
        return build()
    with obs.observe() as session:
        with obs.span(command):
            report = build()
        report.attach_observability(session.snapshot(command=command))
    return report


def estimate(
    workloads: Sequence[str] | None = None,
    *,
    tokens: int | None = None,
    layers: int | None = None,
    cluster: ClusterSpec | None = None,
    seed: int = 0,
    reuse: bool = True,
    record_trace: bool = False,
    smoke: bool = False,
    profile: bool = False,
) -> EndToEndReport:
    """Whole-model latency estimates (the ``repro e2e`` subcommand).

    ``workloads=None`` estimates all five paper workloads; ``smoke=True``
    shrinks every model to 2 layers unless ``layers`` is given.
    ``profile=True`` attaches an observability snapshot to the report.
    """

    def build() -> EndToEndReport:
        nonlocal layers
        cluster_spec = cluster or ClusterSpec()
        if smoke and layers is None:
            layers = 2
        report = estimate_models(
            names=list(workloads) if workloads else None,
            tokens=tokens,
            device=cluster_spec.device_spec,
            topology=cluster_spec.resolve(),
            layers=layers,
            settings=OverlapSettings(seed=seed),
            reuse=reuse,
            record_trace=record_trace,
        )
        report.meta["smoke"] = smoke
        return report

    return _profiled("repro e2e", profile, build)


def pp(
    workloads: Sequence[str] | None = None,
    *,
    stages: int | None = None,
    microbatches: int | None = None,
    schedules: Sequence[str] | None = None,
    tokens: int | None = None,
    layers: int | None = None,
    partition: Sequence[int] | None = None,
    cluster: ClusterSpec | None = None,
    seed: int = 0,
    reuse: bool = True,
    record_trace: bool = True,
    fast: bool = True,
    smoke: bool = False,
    profile: bool = False,
) -> PipelineReport:
    """Pipeline-parallel schedule estimates (the ``repro pp`` subcommand).

    Arguments left at ``None`` take the full-run defaults (4 stages,
    8 microbatches, all five workloads, all three schedules) or, with
    ``smoke=True``, the CI-sized scenario in :data:`PP_SMOKE`.
    ``fast=False`` replays the schedules through the event-by-event reference
    path instead of the vectorized sweep (bit-identical results).
    ``profile=True`` attaches an observability snapshot to the report.
    """

    def build() -> PipelineReport:
        nonlocal workloads, stages, microbatches, layers
        from repro.workloads.e2e import workload_builders

        cluster_spec = cluster or ClusterSpec()
        defaults = PP_SMOKE if smoke else PP_DEFAULTS
        if workloads is None:
            workloads = defaults.get("workloads")
        if stages is None:
            stages = defaults["stages"]
        if microbatches is None:
            microbatches = defaults["microbatches"]
        if layers is None:
            layers = defaults.get("layers")
        names = list(workloads) if workloads else sorted(workload_builders())
        # Canonical (bubble-decreasing) order regardless of argument order.
        ordered = tuple(
            name for name in KNOWN_SCHEDULES if schedules is None or name in schedules
        )
        report = estimate_pipelines(
            names=names,
            stages=stages,
            microbatches=microbatches,
            schedules=ordered,
            tokens=tokens,
            device=cluster_spec.device_spec,
            topology=cluster_spec.resolve(),
            layers=layers,
            settings=OverlapSettings(seed=seed),
            reuse=reuse,
            record_trace=record_trace,
            partition=tuple(int(count) for count in partition) if partition is not None else None,
            fast=fast,
        )
        report.meta["smoke"] = smoke
        return report

    return _profiled("repro pp", profile, build)


def serve(
    *,
    rate: float | None = None,
    requests: int | None = None,
    duration: float | None = None,
    distribution: str | None = None,
    trace: str | None = None,
    workload: str | None = None,
    layers: int | None = None,
    max_batch_tokens: int | None = None,
    max_batch_size: int | None = None,
    plan_cache: int = 64,
    warm_cache: str | None = None,
    baseline: bool = False,
    slo_ttft: float = 1.0,
    slo_tpot: float = 0.1,
    faults: object | None = None,
    fault_preset: str | None = None,
    retry_policy: object | None = None,
    deadline: float | None = None,
    admission_limit: int | None = None,
    warm_spares: int = 0,
    failover_delay: float = 0.05,
    cluster: ClusterSpec | None = None,
    seed: int = 0,
    fast: bool = True,
    smoke: bool = False,
    profile: bool = False,
) -> ServeReport:
    """One online-serving simulation (the ``repro serve`` subcommand).

    Arguments left at ``None`` take :data:`SERVE_DEFAULTS` (or the CI-sized
    smoke scenario with ``smoke=True``, which also implies ``baseline``).
    Raises :class:`ValueError` when the traffic generator produces no
    requests.

    ``faults`` (a :class:`~repro.faults.FaultPlan` or a path to its JSON) or
    ``fault_preset`` (a named preset scaled to the traffic horizon) injects a
    deterministic fault timeline; ``retry_policy`` (a
    :class:`~repro.faults.RetryPolicy` or a CLI-style spec string),
    ``deadline``, ``admission_limit`` and ``warm_spares`` configure the
    resilience policy.  Faulted runs additionally simulate the fault-free
    reference arm so the report can state goodput-under-failure.
    ``fast=False`` forces the one-event-per-iteration reference loop instead
    of the batched fast path (bit-identical results).  ``profile=True``
    attaches an observability snapshot to the report.
    """

    def build() -> ServeReport:
        nonlocal baseline, cluster
        from repro.comm.topology import known_topologies
        from repro.core.tuner import GemmShapeCache
        from repro.faults import (
            FaultInjector,
            FaultPlan,
            ResiliencePolicy,
            RetryPolicy,
            build_fault_preset,
            parse_retry_policy,
        )
        from repro.serve import (
            SLO,
            PlanCache,
            PoissonArrivals,
            ServeConfig,
            ServingSimulator,
            TraceArrivals,
            distribution_by_name,
        )
        from repro.serve.simulator import SERVE_MODELS, SMOKE_SCENARIO

        scenario = {
            "rate": rate,
            "requests": requests,
            "distribution": distribution,
            "workload": workload,
            "layers": layers,
            "max_batch_tokens": max_batch_tokens,
            "max_batch_size": max_batch_size,
        }
        defaults = dict(SMOKE_SCENARIO if smoke else SERVE_DEFAULTS)
        if duration is not None:
            # An explicit duration bounds the traffic by itself; do not cap it
            # with the default request count too.
            defaults.pop("requests")
        for name, value in defaults.items():
            if scenario[name] is None:
                scenario[name] = value
        if smoke:
            baseline = True

        if trace:
            arrivals = TraceArrivals.from_jsonl(trace)
            traffic = f"trace {trace}"
        else:
            arrivals = PoissonArrivals(
                rate_rps=scenario["rate"],
                distribution=distribution_by_name(scenario["distribution"]),
                seed=seed,
                num_requests=scenario["requests"],
                duration_s=duration,
            )
            traffic = (
                f"poisson @ {scenario['rate']:g} req/s, "
                f"{scenario['distribution']} lengths, seed {seed}"
            )
        generated = arrivals.generate()
        if not generated:
            raise ValueError("the traffic generator produced no requests")

        if faults is not None and fault_preset is not None:
            raise ValueError("pass faults= or fault_preset=, not both")
        fault_plan = None
        if faults is not None:
            fault_plan = faults if isinstance(faults, FaultPlan) else FaultPlan.load(faults)
        elif fault_preset is not None:
            horizon = max(request.arrival_time for request in generated)
            fault_plan = build_fault_preset(
                fault_preset, horizon=horizon if horizon > 0 else 1.0, seed=seed
            )

        if isinstance(retry_policy, str):
            retry = parse_retry_policy(retry_policy, seed=seed)
        elif retry_policy is None:
            retry = RetryPolicy(seed=seed)
        else:
            retry = retry_policy
        policy = None
        if (
            fault_plan is not None
            or retry_policy is not None
            or deadline is not None
            or admission_limit is not None
            or warm_spares
        ):
            policy = ResiliencePolicy(
                retry=retry,
                deadline_s=deadline,
                admission_limit=admission_limit,
                warm_spares=warm_spares,
                failover_delay_s=failover_delay,
            )
        injector = FaultInjector(fault_plan, policy) if fault_plan is not None else None

        cluster = cluster or ClusterSpec(gpus=4)
        # Serving needs a concrete interconnect: a paper-default spec lands on
        # the historical `repro serve` default (a800-nvlink x 4).
        topology = cluster.resolve()
        if topology is None:
            topology = known_topologies()["a800-nvlink"].with_n_gpus(4)

        settings = OverlapSettings(seed=seed)
        config = ServeConfig(
            model=SERVE_MODELS[scenario["workload"]],
            device=cluster.device_spec,
            topology=topology,
            layers=scenario["layers"],
            max_batch_tokens=scenario["max_batch_tokens"],
            max_batch_size=scenario["max_batch_size"],
            settings=settings,
        )
        warm = GemmShapeCache.load(warm_cache, missing_ok=True) if warm_cache else None
        cache = PlanCache(settings, capacity=plan_cache, warm_start=warm,
                          min_bucket=config.min_bucket)
        slo = SLO(ttft_s=slo_ttft, tpot_s=slo_tpot)

        overlap = ServingSimulator(
            config, plan_cache=cache, mode="overlap", faults=injector,
            resilience=policy, fast=fast,
        ).run(generated)
        baseline_result = None
        if baseline:
            # The baseline arm rides the same fault timeline so the overlap
            # comparison stays like-for-like.
            baseline_result = ServingSimulator(
                config, mode="non-overlap", faults=injector, resilience=policy, fast=fast
            ).run(generated)
        fault_free_result = None
        if injector is not None:
            fault_free_result = ServingSimulator(
                config,
                plan_cache=PlanCache(settings, capacity=plan_cache, warm_start=warm,
                                     min_bucket=config.min_bucket),
                mode="overlap",
                fast=fast,
            ).run(generated)
        if warm_cache and warm is not None:
            warm.save(warm_cache)

        return ServeReport(
            config=config,
            slo=slo,
            overlap=overlap,
            baseline=baseline_result,
            traffic=traffic,
            num_requests=len(generated),
            fault_free=fault_free_result,
            meta={
                "workload": scenario["workload"],
                "cluster": cluster.to_dict(),
                "layers": scenario["layers"],
                "max_batch_tokens": scenario["max_batch_tokens"],
                "max_batch_size": scenario["max_batch_size"],
                "plan_cache": plan_cache,
                "traffic": traffic,
                "requests": len(generated),
                "slo": {"ttft_s": slo.ttft_s, "tpot_s": slo.tpot_s},
                "baseline": bool(baseline),
                "faults": fault_plan.to_dict() if fault_plan is not None else None,
                "resilience": policy.to_dict() if policy is not None else None,
                "seed": seed,
                "smoke": smoke,
            },
        )

    return _profiled("repro serve", profile, build)


def sweep(
    presets: Sequence[str] | None = None,
    *,
    config: str | None = None,
    out: str | Path = "sweep_results.jsonl",
    workers: int = 1,
    resume: bool = False,
    cache: str | None = None,
    plan_store: str | None = None,
    baselines: bool = False,
    group_by: Sequence[str] = DEFAULT_GROUP_KEYS,
    heartbeat_s: float = 0.0,
    profile: bool = False,
) -> SweepReport:
    """Fan a scenario matrix out into a JSONL store (the ``repro sweep`` subcommand).

    Exactly one of ``presets`` (named matrices) or ``config`` (path of a
    ScenarioMatrix JSON) must be given.  Raises :class:`KeyError` /
    :class:`ValueError` / :class:`OSError` on bad presets, group keys or
    config files -- the CLI maps those onto exit code 2.  ``heartbeat_s``
    emits periodic progress lines (done/total, retries, quarantines, ETA)
    while jobs run; ``profile=True`` attaches an observability snapshot.
    ``plan_store`` names a priced-cell store file: sweep points whose content
    matches a stored cell replay the priced results instead of re-simulating
    (incremental re-simulation), and freshly priced cells are written back.
    """

    def build() -> SweepReport:
        from repro.core.tuner import GemmShapeCache
        from repro.sweep import (
            ResultStore,
            Scenario,
            ScenarioMatrix,
            SweepRunner,
            matrix_from_preset,
        )

        if bool(presets) == bool(config):
            raise ValueError("exactly one of presets= or config= must be given")
        if config:
            payload = json.loads(Path(config).read_text(encoding="utf-8"))
            matrices = [ScenarioMatrix.from_dict(payload)]
        else:
            matrices = [matrix_from_preset(name) for name in presets]

        group_keys = tuple(group_by)
        scenario_fields = set(Scenario.__dataclass_fields__)
        unknown_keys = [key for key in group_keys if key not in scenario_fields]
        if unknown_keys:
            raise ValueError(
                f"unknown group-by fields {unknown_keys}; known: {sorted(scenario_fields)}"
            )

        warm = GemmShapeCache.load(cache, missing_ok=True) if cache else None
        store = ResultStore(out)
        runner = SweepRunner(
            store,
            workers=workers,
            resume=resume,
            cache=warm,
            cache_path=cache,
            baselines=baselines,
            plan_store_path=plan_store,
            heartbeat_s=heartbeat_s,
        )
        summaries = [(matrix.name, runner.run(matrix)) for matrix in matrices]
        return SweepReport(
            summaries=summaries,
            group_keys=group_keys,
            meta={
                "matrices": [name for name, _ in summaries],
                "out": str(store.path),
                "completed_jobs": len(store.completed_ids()),
                "workers": workers,
                "resume": resume,
                "baselines": baselines,
                "cache": cache,
                "cache_entries": len(runner.cache) if cache else None,
                "plan_store": plan_store,
                "priced_cells": len(runner.plan_store) if plan_store else None,
                "priced_cell_stats": runner.plan_store.stats() if plan_store else None,
                # Replays counted from the records: worker-pool lookups hit the
                # workers' snapshots, not the parent store's counters.
                "priced_hits": (
                    sum(summary.priced_hits for _, summary in summaries)
                    if plan_store else None
                ),
                "group_by": list(group_keys),
            },
        )

    return _profiled("repro sweep", profile, build)


def plan(
    workload: str = "llama3-training",
    *,
    cluster: ClusterSpec | None = None,
    tokens: int | None = None,
    layers: int | None = None,
    tp_degrees: Sequence[int] | None = None,
    microbatch_counts: Sequence[int] | None = None,
    schedules: Sequence[str] | None = None,
    methods: Sequence[str] | None = None,
    layer_weights: Sequence[float] | None = None,
    max_configs: int | None = None,
    prune: bool = True,
    deadline: float | None = None,
    seed: int = 0,
    smoke: bool = False,
    profile: bool = False,
):
    """Joint auto-parallelism search (the ``repro plan`` subcommand).

    Searches TP degree x pipeline stages x microbatch count x schedule x
    overlap method over ``cluster`` (default: one 8-GPU A800 server) and
    returns a :class:`~repro.plan.report.PlanSearchReport` whose ``winner``
    replays bit-identically through ``repro pp`` / ``repro e2e``.
    ``smoke=True`` fills arguments left at ``None`` with the CI-sized space
    in :data:`PLAN_SMOKE`.  ``deadline`` caps the wall-clock seconds the
    pricing loop may spend; a truncated search returns the best-so-far
    frontier with ``space["truncated"]`` set.  ``profile=True`` attaches an
    observability snapshot (phase spans, plan-store and prune counters).
    """

    def build():
        nonlocal layers, tp_degrees, microbatch_counts
        from repro.plan import PLAN_METHODS, search_plan

        cluster_spec = cluster or ClusterSpec(gpus=8)
        if smoke:
            if layers is None:
                layers = PLAN_SMOKE["layers"]
            if tp_degrees is None:
                tp_degrees = PLAN_SMOKE["tp_degrees"]
            if microbatch_counts is None:
                microbatch_counts = PLAN_SMOKE["microbatch_counts"]
        report = search_plan(
            workload=workload,
            cluster=cluster_spec,
            tokens=tokens,
            layers=layers,
            tp_degrees=tuple(tp_degrees) if tp_degrees is not None else None,
            microbatch_counts=(
                tuple(microbatch_counts) if microbatch_counts is not None else None
            ),
            schedules=tuple(
                name for name in KNOWN_SCHEDULES if schedules is None or name in schedules
            ),
            methods=tuple(methods) if methods is not None else PLAN_METHODS,
            settings=OverlapSettings(seed=seed),
            layer_weights=tuple(layer_weights) if layer_weights is not None else None,
            max_configs=max_configs,
            prune=prune,
            deadline_s=deadline,
        )
        report.meta["smoke"] = smoke
        return report

    return _profiled("repro plan", profile, build)
