"""Command-line interface: tune, report, sweep and verify overlap problems.

A thin front end over :class:`~repro.core.overlap.FlashOverlapOperator` and
:class:`~repro.sweep.SweepRunner` so the library can be exercised without
writing Python::

    repro report  --m 4096 --n 8192 --k 7168 --device rtx4090 \
                  --topology rtx4090-pcie --gpus 4 --collective allreduce
    repro tune    --m 16384 --n 8192 --k 2048 --device a800 \
                  --topology a800-nvlink --gpus 4 --collective reducescatter
    repro verify  --collective alltoall --gpus 4
    repro compare --m 16384 --n 8192 --k 4096 --device a800 \
                  --topology a800-nvlink --gpus 8 --collective reducescatter
    repro sweep   --preset llm-inference --workers 4 --out results.jsonl \
                  --cache shapes.json --resume

Sub-commands:

* ``report``  -- tune, simulate and print the speedup report of one problem;
* ``tune``    -- print the tuned wave-group partition (optionally persist it
  into a JSON shape cache with ``--cache``);
* ``compare`` -- compare FlashOverlap against every supported baseline;
* ``verify``  -- run the NumPy correctness pipeline on a small instance;
* ``sweep``   -- fan a scenario matrix (named preset or JSON config) out over
  worker processes into a JSONL result store, with resume and shape-cache
  warm start.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.comm.primitives import CollectiveKind
from repro.comm.topology import known_topologies
from repro.core.config import OverlapProblem, OverlapSettings
from repro.core.overlap import FlashOverlapOperator
from repro.core.tuner import GemmShapeCache, PredictiveTuner
from repro.gpu.device import device_by_name, known_devices
from repro.gpu.gemm import GemmShape, GemmTileConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlashOverlap reproduction: tune and evaluate GEMM + collective overlap",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_problem_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--m", type=int, default=4096, help="GEMM M (rows of the output)")
        p.add_argument("--n", type=int, default=8192, help="GEMM N (columns of the output)")
        p.add_argument("--k", type=int, default=7168, help="GEMM K (accumulation depth)")
        p.add_argument("--device", default="rtx4090", choices=sorted(known_devices()),
                       help="simulated accelerator")
        p.add_argument("--topology", default="rtx4090-pcie", choices=sorted(known_topologies()),
                       help="simulated server / interconnect")
        p.add_argument("--gpus", type=int, default=4, help="number of GPUs in the collective")
        p.add_argument("--collective", default="allreduce",
                       choices=["allreduce", "reducescatter", "alltoall"],
                       help="collective following the GEMM")
        p.add_argument("--imbalance", type=float, default=1.0,
                       help="per-GPU workload skew (>= 1.0, for expert parallelism)")
        p.add_argument("--seed", type=int, default=0, help="seed of the stochastic model terms")

    report = sub.add_parser("report", help="tune, simulate and print the speedup report")
    add_problem_arguments(report)

    tune = sub.add_parser("tune", help="print the tuned wave-group partition")
    add_problem_arguments(tune)
    tune.add_argument("--cache", type=str, default=None,
                      help="JSON shape-cache file to read/update with the tuned result")

    compare = sub.add_parser("compare", help="compare FlashOverlap against the baselines")
    add_problem_arguments(compare)

    verify = sub.add_parser("verify", help="run the NumPy correctness pipeline (small instance)")
    verify.add_argument("--collective", default="allreduce",
                        choices=["allreduce", "reducescatter", "alltoall"])
    verify.add_argument("--gpus", type=int, default=4)
    verify.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser(
        "sweep", help="fan a scenario matrix out over worker processes into a JSONL store"
    )
    source = sweep.add_mutually_exclusive_group(required=True)
    source.add_argument("--preset", action="append", dest="presets", metavar="NAME",
                        help="named scenario matrix (repeatable); see --list-presets")
    source.add_argument("--config", type=str,
                        help="JSON file holding a ScenarioMatrix dict (see sweep docs)")
    source.add_argument("--list-presets", action="store_true",
                        help="print the known preset matrices and exit")
    sweep.add_argument("--out", type=str, default="sweep_results.jsonl",
                       help="JSONL result store (appended to; used by --resume)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (<=1 runs in-process)")
    sweep.add_argument("--resume", action="store_true",
                       help="skip job IDs already completed in --out")
    sweep.add_argument("--cache", type=str, default=None,
                       help="GEMM shape-cache JSON warm start, updated after the run")
    sweep.add_argument("--baselines", action="store_true",
                       help="also evaluate every baseline method per scenario (slower)")
    sweep.add_argument("--group-by", type=str, default="workload,collective,topology",
                       help="comma-separated scenario fields of the summary rollup")
    return parser


def _problem_from_args(args: argparse.Namespace) -> OverlapProblem:
    topology = known_topologies()[args.topology].with_n_gpus(args.gpus)
    return OverlapProblem(
        shape=GemmShape(m=args.m, n=args.n, k=args.k),
        device=device_by_name(args.device),
        topology=topology,
        collective=CollectiveKind.from_name(args.collective),
        imbalance=args.imbalance,
    )


def _settings_from_args(args: argparse.Namespace) -> OverlapSettings:
    return OverlapSettings(seed=args.seed)


def _command_report(args: argparse.Namespace) -> int:
    problem = _problem_from_args(args)
    operator = FlashOverlapOperator(problem, _settings_from_args(args))
    plan = operator.plan()
    report = operator.report()
    print(f"problem           : {problem.describe()}")
    print(f"waves             : {plan.partition.num_waves}")
    print(f"tuned partition   : {plan.partition}")
    print(f"mode              : {'overlap' if plan.use_overlap else 'sequential fallback'}")
    print(f"non-overlap       : {report.non_overlap_latency * 1e3:.3f} ms")
    print(f"FlashOverlap      : {report.overlap_latency * 1e3:.3f} ms")
    print(f"theoretical bound : {report.theoretical_latency * 1e3:.3f} ms")
    print(f"speedup           : {report.speedup:.3f}x "
          f"({report.ratio_of_theoretical * 100:.1f}% of theoretical)")
    return 0


def _command_tune(args: argparse.Namespace) -> int:
    problem = _problem_from_args(args)
    settings = _settings_from_args(args)
    tuner = PredictiveTuner(settings)
    if args.cache:
        from pathlib import Path

        cache = GemmShapeCache.load(args.cache) if Path(args.cache).exists() else GemmShapeCache()
        result = cache.lookup_or_tune(problem, tuner)
        cache.save(args.cache)
        print(f"cache             : {args.cache} ({len(cache)} entries)")
    else:
        result = tuner.tune(problem)
    print(f"problem           : {problem.describe()}")
    print(f"partition         : {result.partition}")
    print(f"predicted latency : {result.predicted_latency * 1e3:.3f} ms")
    print(f"candidates        : {result.candidates_evaluated}")
    print(f"mode              : {'overlap' if result.use_overlap else 'sequential fallback'}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    from repro.analysis.speedup import compare_methods

    problem = _problem_from_args(args)
    comparison = compare_methods(problem, settings=_settings_from_args(args))
    print(f"problem: {problem.describe()}")
    width = max(len(name) for name in comparison.speedups)
    for name, speedup in sorted(comparison.speedups.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<{width}} : {speedup:.3f}x")
    print(f"best method: {comparison.best_method()}")
    return 0


def _command_verify(args: argparse.Namespace) -> int:
    from repro.comm.topology import InterconnectKind, Topology
    from repro.gpu.device import GPUSpec

    device = GPUSpec(name="tiny-gpu", sm_count=8, fp16_tflops=4.0, hbm_bandwidth_gbps=200.0)
    topology = Topology(
        name="tiny", n_gpus=args.gpus, kind=InterconnectKind.PCIE,
        peak_bus_bandwidth_gbps=10.0, base_latency_us=20.0, half_saturation_mb=0.5,
        comm_sm_count=2, supports_p2p=False,
    )
    problem = OverlapProblem(
        shape=GemmShape(m=64, n=48, k=32),
        device=device,
        topology=topology,
        collective=CollectiveKind.from_name(args.collective),
        gemm_config=GemmTileConfig(tile_m=8, tile_n=8, tile_k=8, swizzle_size=2),
    )
    operator = FlashOverlapOperator(problem, OverlapSettings(seed=args.seed))
    result = operator.run_numeric()
    status = "all close" if result.allclose() else "MISMATCH"
    print(f"{problem.collective.short_name} on {args.gpus} simulated GPUs: {status} "
          f"(max |error| = {result.max_abs_error():.3e})")
    return 0 if result.allclose() else 1


def _command_sweep(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.core.tuner import GemmShapeCache
    from repro.sweep import (
        ResultStore,
        Scenario,
        ScenarioMatrix,
        SweepRunner,
        group_summary_table,
        matrix_from_preset,
        scenario_table,
        sweep_presets,
    )

    if args.list_presets:
        for name, factory in sorted(sweep_presets().items()):
            print(f"{name:<20} {len(factory())} scenarios")
        return 0

    try:
        if args.config:
            payload = json.loads(Path(args.config).read_text(encoding="utf-8"))
            matrices = [ScenarioMatrix.from_dict(payload)]
        else:
            matrices = [matrix_from_preset(name) for name in args.presets]
    except (KeyError, ValueError, OSError, json.JSONDecodeError) as error:
        print(f"repro sweep: error: {error}", file=sys.stderr)
        return 2

    group_keys = tuple(key.strip() for key in args.group_by.split(",") if key.strip())
    scenario_fields = set(Scenario.__dataclass_fields__)
    unknown_keys = [key for key in group_keys if key not in scenario_fields]
    if unknown_keys:
        print(
            f"repro sweep: error: unknown --group-by fields {unknown_keys}; "
            f"known: {sorted(scenario_fields)}",
            file=sys.stderr,
        )
        return 2

    cache = GemmShapeCache.load(args.cache, missing_ok=True) if args.cache else None
    store = ResultStore(args.out)
    runner = SweepRunner(
        store,
        workers=args.workers,
        resume=args.resume,
        cache=cache,
        cache_path=args.cache,
        baselines=args.baselines,
    )

    all_records: list[dict] = []
    failed = 0
    for matrix in matrices:
        summary = runner.run(matrix)
        failed += summary.failed
        all_records.extend(summary.records)
        print(f"{matrix.name}: {summary.describe()}")

    if all_records:
        print()
        print(scenario_table(all_records, title="per-scenario results"))
        print()
        print(group_summary_table(all_records, keys=group_keys, title="per-group summary"))
    print(f"\nresults  : {store.path} ({len(store.completed_ids())} completed jobs)")
    if args.cache:
        print(f"cache    : {args.cache} ({len(runner.cache)} entries)")
    return 1 if failed else 0


_COMMANDS = {
    "report": _command_report,
    "tune": _command_tune,
    "compare": _command_compare,
    "verify": _command_verify,
    "sweep": _command_sweep,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro`` / ``repro-overlap`` console scripts."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # e.g. `repro sweep | head`: the reader went away; exit quietly with
        # the conventional SIGPIPE status instead of a traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
