"""Command-line interface: tune, report, sweep and verify overlap problems.

A thin front end over :class:`~repro.core.overlap.FlashOverlapOperator` and
:class:`~repro.sweep.SweepRunner` so the library can be exercised without
writing Python::

    repro report  --m 4096 --n 8192 --k 7168 --device rtx4090 \
                  --topology rtx4090-pcie --gpus 4 --collective allreduce
    repro tune    --m 16384 --n 8192 --k 2048 --device a800 \
                  --topology a800-nvlink --gpus 4 --collective reducescatter
    repro verify  --collective alltoall --gpus 4
    repro compare --m 16384 --n 8192 --k 4096 --device a800 \
                  --topology a800-nvlink --gpus 8 --collective reducescatter
    repro sweep   --preset llm-inference --workers 4 --out results.jsonl \
                  --cache shapes.json --resume
    repro serve   --rate 32 --requests 64 --workload llama3-70b \
                  --topology a800-nvlink --gpus 4 --baseline

Sub-commands:

* ``report``  -- tune, simulate and print the speedup report of one problem;
* ``tune``    -- print the tuned wave-group partition (optionally persist it
  into a JSON shape cache with ``--cache``);
* ``compare`` -- compare FlashOverlap against every supported baseline;
* ``verify``  -- run the NumPy correctness pipeline on a small instance;
* ``sweep``   -- fan a scenario matrix (named preset or JSON config) out over
  worker processes into a JSONL result store, with resume and shape-cache
  warm start;
* ``serve``   -- simulate online serving (Poisson or trace arrivals,
  continuous batching, shape-bucketed plan cache) and report TTFT/TPOT
  percentiles, throughput and goodput, optionally against the non-overlap
  baseline;
* ``e2e``     -- estimate whole-model latency for the paper's end-to-end
  workloads (Table 4): every operator of every layer is priced through a
  shared plan store (repeated layers are tuned once) and compared against
  the non-overlap execution and the perfect-overlap bound;
* ``pp``      -- schedule those workloads under pipeline parallelism:
  split the layer stack into stages and the input into microbatches,
  generate GPipe / 1F1B / zero-bubble schedules, replay them on the event
  engine with plan-store-priced cells and inter-stage P2P transfers, and
  report per-stage timelines, bubble ratios and step latencies.

Multi-GPU problems default to one server (``--topology`` x ``--gpus``); pass
``--nodes``/``--gpus-per-node`` instead to place the collective on a
multi-node A800 cluster (NVLink inside a node, InfiniBand across nodes).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.comm.primitives import CollectiveKind
from repro.comm.topology import known_topologies
from repro.core.config import OverlapProblem, OverlapSettings
from repro.core.overlap import FlashOverlapOperator
from repro.core.tuner import GemmShapeCache, PredictiveTuner
from repro.gpu.device import device_by_name, known_devices
from repro.gpu.gemm import GemmShape, GemmTileConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlashOverlap reproduction: tune and evaluate GEMM + collective overlap",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_problem_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--m", type=int, default=4096, help="GEMM M (rows of the output)")
        p.add_argument("--n", type=int, default=8192, help="GEMM N (columns of the output)")
        p.add_argument("--k", type=int, default=7168, help="GEMM K (accumulation depth)")
        p.add_argument("--device", default="rtx4090", choices=sorted(known_devices()),
                       help="simulated accelerator")
        p.add_argument("--topology", default="rtx4090-pcie", choices=sorted(known_topologies()),
                       help="simulated server / interconnect")
        p.add_argument("--gpus", type=int, default=4, help="number of GPUs in the collective")
        p.add_argument("--collective", default="allreduce",
                       choices=["allreduce", "reducescatter", "alltoall"],
                       help="collective following the GEMM")
        p.add_argument("--imbalance", type=float, default=1.0,
                       help="per-GPU workload skew (>= 1.0, for expert parallelism)")
        p.add_argument("--seed", type=int, default=0, help="seed of the stochastic model terms")
        add_multinode_arguments(p)

    def add_multinode_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--nodes", type=int, default=None, metavar="N",
                       help="span the collective across N A800 nodes over InfiniBand "
                            "(overrides --topology/--gpus)")
        p.add_argument("--gpus-per-node", type=int, default=8,
                       help="GPUs per node when --nodes is given")

    report = sub.add_parser("report", help="tune, simulate and print the speedup report")
    add_problem_arguments(report)

    tune = sub.add_parser("tune", help="print the tuned wave-group partition")
    add_problem_arguments(tune)
    tune.add_argument("--cache", type=str, default=None,
                      help="JSON shape-cache file to read/update with the tuned result")

    compare = sub.add_parser("compare", help="compare FlashOverlap against the baselines")
    add_problem_arguments(compare)

    verify = sub.add_parser("verify", help="run the NumPy correctness pipeline (small instance)")
    verify.add_argument("--collective", default="allreduce",
                        choices=["allreduce", "reducescatter", "alltoall"])
    verify.add_argument("--topology", default="tiny-pcie", choices=sorted(known_topologies()),
                        help="simulated server / interconnect (default: the tiny test box)")
    verify.add_argument("--gpus", type=int, default=4)
    verify.add_argument("--seed", type=int, default=0)
    add_multinode_arguments(verify)

    sweep = sub.add_parser(
        "sweep", help="fan a scenario matrix out over worker processes into a JSONL store"
    )
    source = sweep.add_mutually_exclusive_group(required=True)
    source.add_argument("--preset", action="append", dest="presets", metavar="NAME",
                        help="named scenario matrix (repeatable); see --list-presets")
    source.add_argument("--config", type=str,
                        help="JSON file holding a ScenarioMatrix dict (see sweep docs)")
    source.add_argument("--list-presets", action="store_true",
                        help="print the known preset matrices and exit")
    sweep.add_argument("--out", type=str, default="sweep_results.jsonl",
                       help="JSONL result store (appended to; used by --resume)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (<=1 runs in-process)")
    sweep.add_argument("--resume", action="store_true",
                       help="skip job IDs already completed in --out")
    sweep.add_argument("--cache", type=str, default=None,
                       help="GEMM shape-cache JSON warm start, updated after the run")
    sweep.add_argument("--baselines", action="store_true",
                       help="also evaluate every baseline method per scenario (slower)")
    sweep.add_argument("--group-by", type=str, default="workload,collective,topology",
                       help="comma-separated scenario fields of the summary rollup")

    from repro.serve.arrivals import length_distributions
    from repro.serve.simulator import SERVE_MODELS

    serve = sub.add_parser(
        "serve", help="simulate online serving: traffic, continuous batching, plan cache"
    )
    # Flags covered by the --smoke preset default to None so that --smoke can
    # fill exactly the values the user did not pass (see _SERVE_DEFAULTS).
    serve.add_argument("--rate", type=float, default=None,
                       help="Poisson arrival rate in requests/s (default 32)")
    serve.add_argument("--requests", type=int, default=None,
                       help="number of requests to generate "
                            "(default 64, unless --duration bounds the traffic)")
    serve.add_argument("--duration", type=float, default=None,
                       help="bound the arrival window (seconds) instead of, "
                            "or in addition to, --requests")
    serve.add_argument("--distribution", default=None,
                       choices=sorted(length_distributions()),
                       help="prompt/output length distribution of the traffic (default chat)")
    serve.add_argument("--trace", type=str, default=None,
                       help="JSONL request trace replacing the Poisson generator "
                            "(fields: arrival_time, prompt_tokens, output_tokens)")
    serve.add_argument("--workload", default=None, choices=sorted(SERVE_MODELS),
                       help="served model (default llama3-70b)")
    serve.add_argument("--device", default="a800", choices=sorted(known_devices()),
                       help="simulated accelerator")
    serve.add_argument("--topology", default="a800-nvlink", choices=sorted(known_topologies()),
                       help="simulated server / interconnect")
    serve.add_argument("--gpus", type=int, default=4,
                       help="tensor-parallel degree (GPUs in the collective)")
    add_multinode_arguments(serve)
    serve.add_argument("--layers", type=int, default=None,
                       help="decoder layers priced per iteration (default 4)")
    serve.add_argument("--max-batch-tokens", type=int, default=None,
                       help="token budget of one continuous-batching iteration (default 4096)")
    serve.add_argument("--max-batch-size", type=int, default=None,
                       help="maximum concurrently running requests (default 32)")
    serve.add_argument("--plan-cache", type=int, default=64, metavar="CAPACITY",
                       help="plan-cache capacity in bucketed shapes (0 disables caching)")
    serve.add_argument("--warm-cache", type=str, default=None,
                       help="GemmShapeCache JSON warm start, updated after the run")
    serve.add_argument("--baseline", action="store_true",
                       help="also serve the same traffic without overlap and compare")
    serve.add_argument("--slo-ttft", type=float, default=1.0, help="TTFT SLO in seconds")
    serve.add_argument("--slo-tpot", type=float, default=0.1, help="TPOT SLO in seconds")
    serve.add_argument("--seed", type=int, default=0, help="traffic and model seed")
    serve.add_argument("--json", type=str, default=None, metavar="PATH",
                       help="write the full metrics report to a JSON file")
    serve.add_argument("--smoke", action="store_true",
                       help="CI-sized defaults for any flags not passed explicitly "
                            "(short summarization burst on the small model); "
                            "implies --baseline")

    from repro.workloads.e2e import workload_builders

    e2e = sub.add_parser(
        "e2e", help="estimate whole-model latency of the paper's end-to-end workloads"
    )
    e2e.add_argument("--workload", action="append", dest="workloads", metavar="NAME",
                     choices=sorted(workload_builders()),
                     help="workload to estimate (repeatable; default: all five paper "
                          f"workloads: {', '.join(sorted(workload_builders()))})")
    e2e.add_argument("--tokens", type=int, default=None,
                     help="input token count / chunk size override "
                          "(default: each model's paper input size)")
    e2e.add_argument("--layers", type=int, default=None,
                     help="layers per model (default: the paper's per-model counts; "
                          "--smoke uses 2)")
    e2e.add_argument("--device", default="a800", choices=sorted(known_devices()),
                     help="simulated accelerator")
    add_multinode_arguments(e2e)
    e2e.add_argument("--no-reuse", action="store_true",
                     help="disable the shared plan store (re-tune every operator "
                          "occurrence; the estimate itself is bit-identical)")
    e2e.add_argument("--seed", type=int, default=0, help="seed of the stochastic model terms")
    e2e.add_argument("--trace", type=str, default=None, metavar="PREFIX",
                     help="export a Chrome trace per workload to PREFIX-<workload>.json")
    e2e.add_argument("--json", type=str, default=None, metavar="PATH",
                     help="write the full report to a JSON file")
    e2e.add_argument("--smoke", action="store_true",
                     help="CI-sized run: paper shapes but 2 layers per model "
                          "(the committed golden fixtures and BENCH_e2e baseline)")

    from repro.pp.schedule import KNOWN_SCHEDULES

    pp = sub.add_parser(
        "pp", help="schedule the paper workloads under pipeline parallelism "
                   "(GPipe / 1F1B / zero-bubble)"
    )
    pp.add_argument("--workload", action="append", dest="workloads", metavar="NAME",
                    choices=sorted(workload_builders()),
                    help="workload to schedule (repeatable; default: all five paper "
                         "workloads; --smoke uses llama3-training)")
    pp.add_argument("--stages", type=int, default=None,
                    help="pipeline stages the layer stack is split across "
                         "(default 4; --smoke uses 2)")
    pp.add_argument("--microbatches", type=int, default=None,
                    help="microbatches the input tokens are split into "
                         "(default 8; --smoke uses 4)")
    pp.add_argument("--schedule", action="append", dest="schedules", metavar="NAME",
                    choices=sorted(KNOWN_SCHEDULES),
                    help="schedule to evaluate (repeatable; default: all three: "
                         f"{', '.join(KNOWN_SCHEDULES)})")
    pp.add_argument("--tokens", type=int, default=None,
                    help="total input token count split across the microbatches "
                         "(default: each model's paper input size)")
    pp.add_argument("--layers", type=int, default=None,
                    help="layers per model (default: the paper's per-model counts; "
                         "--smoke uses 4)")
    pp.add_argument("--device", default="a800", choices=sorted(known_devices()),
                    help="simulated accelerator")
    add_multinode_arguments(pp)
    pp.add_argument("--no-reuse", action="store_true",
                    help="disable the shared plan store (re-tune every operator; "
                         "the schedule estimates are bit-identical)")
    pp.add_argument("--seed", type=int, default=0, help="seed of the stochastic model terms")
    pp.add_argument("--trace", type=str, default=None, metavar="PREFIX",
                    help="export a Chrome trace (one thread per stage) per workload "
                         "and schedule to PREFIX-<workload>-<schedule>.json")
    pp.add_argument("--json", type=str, default=None, metavar="PATH",
                    help="write the full report to a JSON file")
    pp.add_argument("--smoke", action="store_true",
                    help="CI-sized run for any flags not passed explicitly: "
                         "llama3-training, 2 stages, 4 microbatches, 4 layers "
                         "(the committed golden fixtures and BENCH_pp baseline)")
    return parser


def _topology_from_args(args: argparse.Namespace):
    """Resolve the topology: multi-node when --nodes is given, else the preset."""
    if getattr(args, "nodes", None):
        from repro.comm.topology import multinode_a800

        return multinode_a800(n_nodes=args.nodes, gpus_per_node=args.gpus_per_node)
    return known_topologies()[args.topology].with_n_gpus(args.gpus)


def _problem_from_args(args: argparse.Namespace) -> OverlapProblem:
    topology = _topology_from_args(args)
    return OverlapProblem(
        shape=GemmShape(m=args.m, n=args.n, k=args.k),
        device=device_by_name(args.device),
        topology=topology,
        collective=CollectiveKind.from_name(args.collective),
        imbalance=args.imbalance,
    )


def _settings_from_args(args: argparse.Namespace) -> OverlapSettings:
    return OverlapSettings(seed=args.seed)


def _command_report(args: argparse.Namespace) -> int:
    problem = _problem_from_args(args)
    operator = FlashOverlapOperator(problem, _settings_from_args(args))
    plan = operator.plan()
    report = operator.report()
    print(f"problem           : {problem.describe()}")
    print(f"waves             : {plan.partition.num_waves}")
    print(f"tuned partition   : {plan.partition}")
    print(f"mode              : {'overlap' if plan.use_overlap else 'sequential fallback'}")
    print(f"non-overlap       : {report.non_overlap_latency * 1e3:.3f} ms")
    print(f"FlashOverlap      : {report.overlap_latency * 1e3:.3f} ms")
    print(f"theoretical bound : {report.theoretical_latency * 1e3:.3f} ms")
    print(f"speedup           : {report.speedup:.3f}x "
          f"({report.ratio_of_theoretical * 100:.1f}% of theoretical)")
    return 0


def _command_tune(args: argparse.Namespace) -> int:
    problem = _problem_from_args(args)
    settings = _settings_from_args(args)
    tuner = PredictiveTuner(settings)
    if args.cache:
        from pathlib import Path

        cache = GemmShapeCache.load(args.cache) if Path(args.cache).exists() else GemmShapeCache()
        result = cache.lookup_or_tune(problem, tuner)
        cache.save(args.cache)
        print(f"cache             : {args.cache} ({len(cache)} entries)")
    else:
        result = tuner.tune(problem)
    print(f"problem           : {problem.describe()}")
    print(f"partition         : {result.partition}")
    print(f"predicted latency : {result.predicted_latency * 1e3:.3f} ms")
    print(f"candidates        : {result.candidates_evaluated}")
    print(f"mode              : {'overlap' if result.use_overlap else 'sequential fallback'}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    from repro.analysis.speedup import compare_methods

    problem = _problem_from_args(args)
    comparison = compare_methods(problem, settings=_settings_from_args(args))
    print(f"problem: {problem.describe()}")
    width = max(len(name) for name in comparison.speedups)
    for name, speedup in sorted(comparison.speedups.items(), key=lambda kv: -kv[1]):
        print(f"  {name:<{width}} : {speedup:.3f}x")
    print(f"best method: {comparison.best_method()}")
    return 0


def _command_verify(args: argparse.Namespace) -> int:
    from repro.gpu.device import GPUSpec

    device = GPUSpec(name="tiny-gpu", sm_count=8, fp16_tflops=4.0, hbm_bandwidth_gbps=200.0)
    topology = _topology_from_args(args)
    problem = OverlapProblem(
        shape=GemmShape(m=64, n=48, k=32),
        device=device,
        topology=topology,
        collective=CollectiveKind.from_name(args.collective),
        gemm_config=GemmTileConfig(tile_m=8, tile_n=8, tile_k=8, swizzle_size=2),
    )
    operator = FlashOverlapOperator(problem, OverlapSettings(seed=args.seed))
    result = operator.run_numeric()
    status = "all close" if result.allclose() else "MISMATCH"
    print(f"{problem.collective.short_name} on {topology.n_gpus} simulated GPUs "
          f"({topology.name}): {status} (max |error| = {result.max_abs_error():.3e})")
    return 0 if result.allclose() else 1


def _command_sweep(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.core.tuner import GemmShapeCache
    from repro.sweep import (
        ResultStore,
        Scenario,
        ScenarioMatrix,
        SweepRunner,
        group_summary_table,
        matrix_from_preset,
        scenario_table,
        sweep_presets,
    )

    if args.list_presets:
        for name, factory in sorted(sweep_presets().items()):
            print(f"{name:<20} {len(factory())} scenarios")
        return 0

    try:
        if args.config:
            payload = json.loads(Path(args.config).read_text(encoding="utf-8"))
            matrices = [ScenarioMatrix.from_dict(payload)]
        else:
            matrices = [matrix_from_preset(name) for name in args.presets]
    except (KeyError, ValueError, OSError, json.JSONDecodeError) as error:
        print(f"repro sweep: error: {error}", file=sys.stderr)
        return 2

    group_keys = tuple(key.strip() for key in args.group_by.split(",") if key.strip())
    scenario_fields = set(Scenario.__dataclass_fields__)
    unknown_keys = [key for key in group_keys if key not in scenario_fields]
    if unknown_keys:
        print(
            f"repro sweep: error: unknown --group-by fields {unknown_keys}; "
            f"known: {sorted(scenario_fields)}",
            file=sys.stderr,
        )
        return 2

    cache = GemmShapeCache.load(args.cache, missing_ok=True) if args.cache else None
    store = ResultStore(args.out)
    runner = SweepRunner(
        store,
        workers=args.workers,
        resume=args.resume,
        cache=cache,
        cache_path=args.cache,
        baselines=args.baselines,
    )

    all_records: list[dict] = []
    failed = 0
    for matrix in matrices:
        summary = runner.run(matrix)
        failed += summary.failed
        all_records.extend(summary.records)
        print(f"{matrix.name}: {summary.describe()}")

    if all_records:
        print()
        print(scenario_table(all_records, title="per-scenario results"))
        print()
        print(group_summary_table(all_records, keys=group_keys, title="per-group summary"))
    print(f"\nresults  : {store.path} ({len(store.completed_ids())} completed jobs)")
    if args.cache:
        print(f"cache    : {args.cache} ({len(runner.cache)} entries)")
    return 1 if failed else 0


#: Default serving scenario.  Each value only applies to flags the user did
#: not pass explicitly (their parser default is None); the --smoke variant is
#: the shared :data:`repro.serve.simulator.SMOKE_SCENARIO`.
_SERVE_DEFAULTS = {
    "rate": 32.0,
    "requests": 64,
    "distribution": "chat",
    "workload": "llama3-70b",
    "layers": 4,
    "max_batch_tokens": 4096,
    "max_batch_size": 32,
}


def _command_serve(args: argparse.Namespace) -> int:
    import json

    from repro.core.tuner import GemmShapeCache
    from repro.serve import (
        SLO,
        PlanCache,
        PoissonArrivals,
        ServeConfig,
        ServingSimulator,
        TraceArrivals,
        distribution_by_name,
    )
    from repro.serve.simulator import SERVE_MODELS, SMOKE_SCENARIO

    defaults = dict(SMOKE_SCENARIO if args.smoke else _SERVE_DEFAULTS)
    if args.duration is not None:
        # An explicit --duration bounds the traffic by itself; do not cap it
        # with the default request count too.
        defaults.pop("requests")
    for name, value in defaults.items():
        if getattr(args, name) is None:
            setattr(args, name, value)
    if args.smoke:
        args.baseline = True

    if args.trace:
        arrivals = TraceArrivals.from_jsonl(args.trace)
        traffic = f"trace {args.trace}"
    else:
        arrivals = PoissonArrivals(
            rate_rps=args.rate,
            distribution=distribution_by_name(args.distribution),
            seed=args.seed,
            num_requests=args.requests,
            duration_s=args.duration,
        )
        traffic = f"poisson @ {args.rate:g} req/s, {args.distribution} lengths, seed {args.seed}"
    requests = arrivals.generate()
    if not requests:
        print("repro serve: error: the traffic generator produced no requests", file=sys.stderr)
        return 2

    settings = OverlapSettings(seed=args.seed)
    config = ServeConfig(
        model=SERVE_MODELS[args.workload],
        device=device_by_name(args.device),
        topology=_topology_from_args(args),
        layers=args.layers,
        max_batch_tokens=args.max_batch_tokens,
        max_batch_size=args.max_batch_size,
        settings=settings,
    )
    warm = GemmShapeCache.load(args.warm_cache, missing_ok=True) if args.warm_cache else None
    plan_cache = PlanCache(settings, capacity=args.plan_cache, warm_start=warm,
                           min_bucket=config.min_bucket)
    slo = SLO(ttft_s=args.slo_ttft, tpot_s=args.slo_tpot)

    overlap = ServingSimulator(config, plan_cache=plan_cache, mode="overlap").run(requests)
    baseline = None
    if args.baseline:
        baseline = ServingSimulator(config, mode="non-overlap").run(requests)
    if args.warm_cache and warm is not None:
        warm.save(args.warm_cache)

    metrics = overlap.metrics(slo)
    cache_stats = overlap.plan_cache_stats or {}
    print(f"config     : {config.describe()}")
    print(f"traffic    : {len(requests)} requests, {traffic}")
    print(f"iterations : {overlap.iterations} "
          f"({overlap.total_batched_tokens} batched tokens, "
          f"{cache_stats.get('tuner_invocations', 0)} tuner invocations)")
    for name, stats in (("TTFT", metrics.ttft), ("TPOT", metrics.tpot),
                        ("e2e", metrics.e2e_latency)):
        print(f"{name:<11}: p50 {stats.p50 * 1e3:8.2f} ms   p95 {stats.p95 * 1e3:8.2f} ms   "
              f"p99 {stats.p99 * 1e3:8.2f} ms")
    print(f"throughput : {metrics.output_tokens_per_s:.0f} output tokens/s, "
          f"{metrics.requests_per_s:.1f} requests/s")
    print(f"goodput    : {metrics.goodput_requests_per_s:.1f} requests/s within SLO "
          f"(TTFT <= {slo.ttft_s:g}s, TPOT <= {slo.tpot_s:g}s; "
          f"{metrics.slo_attainment * 100:.1f}% attainment)")
    if cache_stats:
        print(f"plan cache : {cache_stats['size']}/{cache_stats['capacity']} plans, "
              f"{cache_stats['lookups']} lookups, {cache_stats['hit_rate'] * 100:.1f}% hits, "
              f"{cache_stats['evictions']} evictions")
    if baseline is not None:
        base = baseline.metrics(slo)
        print(f"baseline   : e2e mean {base.e2e_latency.mean * 1e3:.2f} ms "
              f"vs {metrics.e2e_latency.mean * 1e3:.2f} ms overlapped "
              f"({base.e2e_latency.mean / metrics.e2e_latency.mean:.3f}x), "
              f"TTFT p99 {base.ttft.p99 / metrics.ttft.p99:.3f}x, "
              f"makespan {baseline.makespan_s / overlap.makespan_s:.3f}x")

    if args.json:
        report = {"overlap": overlap.to_dict(slo)}
        if baseline is not None:
            report["non-overlap"] = baseline.to_dict(slo)
        from pathlib import Path

        target = Path(args.json)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        print(f"report     : {target}")
    return 0


def _command_e2e(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.e2e import estimate_models
    from repro.workloads.e2e import workload_builders

    names = args.workloads or sorted(workload_builders())
    layers = args.layers
    if layers is None and args.smoke:
        layers = 2
    topology = _topology_from_args(args) if args.nodes else None
    settings = OverlapSettings(seed=args.seed)
    report = estimate_models(
        names=names,
        tokens=args.tokens,
        device=device_by_name(args.device),
        topology=topology,
        layers=layers,
        settings=settings,
        reuse=not args.no_reuse,
        record_trace=bool(args.trace),
    )
    report.meta["smoke"] = args.smoke

    print(report.table())
    print()
    print(report.breakdown_table())
    for estimate in report.estimates:
        print()
        print(report.operator_table(estimate))
    stats = report.plan_stats
    print(f"\nplan store : {stats['size']} plans, {stats['lookups']} lookups, "
          f"{stats['hit_rate'] * 100:.1f}% hits, "
          f"{stats['tuner_invocations']} tuner invocations"
          + (" (reuse disabled)" if args.no_reuse else ""))

    if args.trace:
        from repro.sim.trace_export import export_chrome_trace

        for name, estimate in zip(names, report.estimates):
            path = export_chrome_trace(estimate.trace, Path(f"{args.trace}-{name}.json"))
            print(f"trace      : {path}")
    if args.json:
        target = Path(args.json)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"report     : {target}")
    return 0


#: CI-sized `repro pp` scenario; applied to flags the user did not pass.
_PP_SMOKE = {"workloads": ["llama3-training"], "stages": 2, "microbatches": 4, "layers": 4}
_PP_DEFAULTS = {"stages": 4, "microbatches": 8}


def _command_pp(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.pp import estimate_pipelines
    from repro.pp.schedule import KNOWN_SCHEDULES
    from repro.workloads.e2e import workload_builders

    for name, value in (_PP_SMOKE if args.smoke else _PP_DEFAULTS).items():
        if getattr(args, name) is None:
            setattr(args, name, value)
    names = args.workloads or sorted(workload_builders())
    # Canonical (bubble-decreasing) order regardless of flag order.
    schedules = tuple(
        name for name in KNOWN_SCHEDULES if args.schedules is None or name in args.schedules
    )
    topology = _topology_from_args(args) if args.nodes else None
    settings = OverlapSettings(seed=args.seed)
    try:
        report = estimate_pipelines(
            names=names,
            stages=args.stages,
            microbatches=args.microbatches,
            schedules=schedules,
            tokens=args.tokens,
            device=device_by_name(args.device),
            topology=topology,
            layers=args.layers,
            settings=settings,
            reuse=not args.no_reuse,
            record_trace=True,
        )
    except ValueError as error:
        print(f"repro pp: error: {error}", file=sys.stderr)
        return 2
    report.meta["smoke"] = args.smoke

    for estimate in report.estimates:
        print(report.table(estimate))
        if estimate.synthesized_backward:
            print("(forward-only stream: backward cells synthesized as ~2x forward)")
        for name in schedules:
            schedule = estimate.schedules[name]
            if schedule.trace is not None:
                print()
                print(f"{name} timeline (FlashOverlap, F=forward B=backward W=wgrad):")
                print(schedule.trace.render_ascii(width=64))
        print()
    stats = report.plan_stats
    print(f"plan store : {stats['size']} plans, {stats['lookups']} lookups, "
          f"{stats['hit_rate'] * 100:.1f}% hits, "
          f"{stats['tuner_invocations']} tuner invocations"
          + (" (reuse disabled)" if args.no_reuse else ""))

    if args.trace:
        from repro.sim.trace_export import export_chrome_trace

        for name, estimate in zip(names, report.estimates):
            for schedule_name in schedules:
                trace = estimate.schedules[schedule_name].trace
                path = export_chrome_trace(
                    trace, Path(f"{args.trace}-{name}-{schedule_name}.json"),
                    process_name=f"pipeline-{name}",
                )
                print(f"trace      : {path}")
    if args.json:
        target = Path(args.json)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"report     : {target}")
    return 0


_COMMANDS = {
    "report": _command_report,
    "tune": _command_tune,
    "compare": _command_compare,
    "verify": _command_verify,
    "sweep": _command_sweep,
    "serve": _command_serve,
    "e2e": _command_e2e,
    "pp": _command_pp,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro`` / ``repro-overlap`` console scripts."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # e.g. `repro sweep | head`: the reader went away; exit quietly with
        # the conventional SIGPIPE status instead of a traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
