"""Resilience policies the serving loop applies under injected faults.

Two layers:

* :class:`RetryPolicy` -- exponential backoff with deterministic jitter for
  dropped requests.  Jitter is drawn from a hash-seeded generator keyed on
  ``(seed, request_id, attempt)`` so the delay for a given retry does not
  depend on the order events fire in -- the same trick the simulator uses for
  drop decisions.
* :class:`ResiliencePolicy` -- the full knob set: retry policy, per-request
  deadline, admission limit (load shedding) and warm-spare failover.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ResiliencePolicy", "RetryPolicy", "parse_retry_policy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, per-attempt jitter."""

    max_retries: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, request_id: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of ``request_id``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = self.backoff_s * self.multiplier ** (attempt - 1)
        if self.jitter == 0.0:
            return base
        # Order-independent draw: keyed on identity, not on call sequence.
        unit = float(np.random.default_rng([self.seed, request_id, attempt]).random())
        return base * (1.0 + self.jitter * unit)

    def to_dict(self) -> dict:
        return {
            "max_retries": self.max_retries,
            "backoff_s": self.backoff_s,
            "multiplier": self.multiplier,
            "jitter": self.jitter,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class ResiliencePolicy:
    """What the serving loop does about faults.

    ``deadline_s`` is a per-request wall-clock budget measured from arrival;
    a request that cannot finish inside it is abandoned as ``timed-out``.
    ``admission_limit`` sheds new arrivals once waiting + running requests
    reach the limit.  ``warm_spares`` covers that many crashes with a spare
    replica, shrinking each covered outage to ``failover_delay_s``.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    deadline_s: float | None = None
    admission_limit: int | None = None
    warm_spares: int = 0
    failover_delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")
        if self.admission_limit is not None and self.admission_limit < 1:
            raise ValueError("admission_limit must be >= 1 when set")
        if self.warm_spares < 0:
            raise ValueError("warm_spares must be non-negative")
        if self.failover_delay_s < 0:
            raise ValueError("failover_delay_s must be non-negative")

    @property
    def engaged(self) -> bool:
        """True when the policy changes behaviour even without a fault plan."""
        return self.deadline_s is not None or self.admission_limit is not None

    def to_dict(self) -> dict:
        return {
            "retry": self.retry.to_dict(),
            "deadline_s": self.deadline_s,
            "admission_limit": self.admission_limit,
            "warm_spares": self.warm_spares,
            "failover_delay_s": self.failover_delay_s,
        }


def parse_retry_policy(spec: str, seed: int = 0) -> RetryPolicy:
    """Parse a CLI retry spec like ``retries=3,backoff=0.05,multiplier=2,jitter=0.25``."""
    keys = {
        "retries": ("max_retries", int),
        "backoff": ("backoff_s", float),
        "multiplier": ("multiplier", float),
        "jitter": ("jitter", float),
    }
    kwargs: dict = {"seed": seed}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad retry spec item {part!r}; expected key=value with keys {sorted(keys)}"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        if key not in keys:
            raise ValueError(f"unknown retry spec key {key!r}; known: {sorted(keys)}")
        name, cast = keys[key]
        kwargs[name] = cast(value.strip())
    return RetryPolicy(**kwargs)
