"""Deterministic fault injection and resilience policies.

The package models *what breaks* (:class:`FaultPlan` -- crashes, stragglers,
degraded links, dropped requests) separately from *what the system does about
it* (:class:`ResiliencePolicy` -- retries with backoff, deadlines, admission
control, warm spares).  :class:`FaultInjector` compiles both into the
queries the serving simulator asks at runtime, and everything is seeded so a
chaos run replays bit-identically (:func:`verify_fault_replay`).
"""

from repro.faults.injector import DowntimeWindow, FaultInjector
from repro.faults.metrics import build_fault_stats
from repro.faults.plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    build_fault_preset,
    fault_presets,
)
from repro.faults.policy import ResiliencePolicy, RetryPolicy, parse_retry_policy
from repro.faults.timeline import SpeedTimeline, SpeedWindow
from repro.faults.verify import verify_fault_replay

__all__ = [
    "FAULT_KINDS",
    "DowntimeWindow",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "ResiliencePolicy",
    "RetryPolicy",
    "SpeedTimeline",
    "SpeedWindow",
    "build_fault_preset",
    "build_fault_stats",
    "fault_presets",
    "parse_retry_policy",
    "verify_fault_replay",
]
