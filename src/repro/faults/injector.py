"""Compile a :class:`~repro.faults.plan.FaultPlan` into simulator queries.

The :class:`FaultInjector` turns the declarative plan into the four questions
the serving loop asks while it runs:

* ``is_down(t)`` / ``next_up(t)`` -- is the replica crashed right now, and
  when does it come back?  Warm spares shrink the first ``warm_spares``
  outages to the failover delay.
* ``straggler_finish(start, work)`` -- when does an iteration of ``work``
  fault-free seconds actually finish, given straggler windows?
* ``comm_factor_at(t)`` -- the interconnect bandwidth fraction in effect when
  an iteration starts (overlapping degradations compose by taking the worst).
* ``drops(request_id, attempt, t)`` -- is this arrival attempt dropped?
  Decisions come from a hash-seeded generator keyed on identity, so they are
  independent of event ordering and replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.plan import FaultPlan
from repro.faults.policy import ResiliencePolicy
from repro.faults.timeline import SpeedTimeline, SpeedWindow

__all__ = ["DowntimeWindow", "FaultInjector"]

# Salt separating the drop-decision stream from retry-jitter draws that share
# the same (seed, request_id, attempt) key space.
_DROP_STREAM = 7919


@dataclass(frozen=True)
class DowntimeWindow:
    """One effective outage after failover policy is applied."""

    start: float
    end: float
    failover: bool

    @property
    def duration(self) -> float:
        return self.end - self.start


class FaultInjector:
    """Deterministic runtime view of a fault plan under a resilience policy."""

    def __init__(
        self,
        plan: FaultPlan,
        policy: ResiliencePolicy | None = None,
    ) -> None:
        self.plan = plan
        self.policy = policy or ResiliencePolicy()

        # Crashes: the first `warm_spares` outages are covered by a spare and
        # cost only the failover delay; the rest ride out the full recovery.
        self.downtime: list[DowntimeWindow] = []
        for index, event in enumerate(plan.of_kind("crash")):
            covered = index < self.policy.warm_spares
            duration = self.policy.failover_delay_s if covered else event.duration
            if duration > 0:
                self.downtime.append(
                    DowntimeWindow(event.start, event.start + duration, failover=covered)
                )
        self.crashes = len(plan.of_kind("crash"))
        self.failovers = sum(1 for w in self.downtime if w.failover)
        self.recovery_times = [w.duration for w in self.downtime]

        # Compute speed: downtime is speed 0, stragglers are 1/factor.
        windows = [SpeedWindow(w.start, w.end, 0.0) for w in self.downtime]
        windows += [
            SpeedWindow(e.start, e.end, 1.0 / e.factor)
            for e in plan.of_kind("straggler")
            if e.factor != 1.0
        ]
        self.compute = SpeedTimeline(windows)

        self._degraded = plan.of_kind("degraded-link")
        self._drops = plan.of_kind("drop")

    # -- replica state -----------------------------------------------------------

    def is_down(self, time: float) -> bool:
        return any(w.start <= time < w.end for w in self.downtime)

    def next_up(self, time: float) -> float:
        """Earliest instant >= ``time`` at which the replica is up."""
        now = time
        for window in self.downtime:  # start-ordered and disjoint
            if window.start <= now < window.end:
                now = window.end
        return now

    def crash_times(self) -> list[float]:
        return [w.start for w in self.downtime]

    # -- speed and bandwidth -----------------------------------------------------

    def straggler_finish(self, start: float, work: float) -> float:
        """Finish time for ``work`` fault-free seconds started at ``start``."""
        return self.compute.finish_time(start, work)

    def comm_factor_at(self, time: float) -> float:
        """Bandwidth fraction in effect at ``time`` (worst overlapping window)."""
        factor = 1.0
        for event in self._degraded:
            if event.start <= time < event.end:
                factor = min(factor, event.factor)
        return factor

    # -- request drops -----------------------------------------------------------

    def drop_probability_at(self, time: float) -> float:
        """Combined drop probability at ``time`` (independent windows)."""
        keep = 1.0
        for event in self._drops:
            if event.start <= time < event.end:
                keep *= 1.0 - event.probability
        return 1.0 - keep

    def drops(self, request_id: int, attempt: int, time: float) -> bool:
        """Whether arrival ``attempt`` of ``request_id`` at ``time`` is dropped."""
        probability = self.drop_probability_at(time)
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        unit = float(
            np.random.default_rng(
                [self.plan.seed, _DROP_STREAM, request_id, attempt]
            ).random()
        )
        return unit < probability

    # -- summary -----------------------------------------------------------------

    def availability(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the replica is up."""
        if horizon <= 0:
            return 1.0
        down = sum(
            max(0.0, min(w.end, horizon) - max(w.start, 0.0)) for w in self.downtime
        )
        return max(0.0, 1.0 - down / horizon)
