"""Fault plans: versioned, seeded schedules of injectable failure events.

A :class:`FaultPlan` is to chaos what :class:`~repro.serve.arrivals.
PoissonArrivals` is to traffic: a deterministic generator of a timeline.  It
is a versioned JSON document (the ``ParallelismPlan`` idiom from ``repro
plan``) listing :class:`FaultEvent` records, each one of four kinds:

* ``crash`` -- the replica goes down at ``start`` and restarts after
  ``duration`` seconds of recovery (warm-spare failover can shorten the
  effective outage, see :class:`~repro.faults.policy.ResiliencePolicy`);
* ``straggler`` -- compute runs ``factor``x slower during the window;
* ``degraded-link`` -- the interconnect bandwidth curve is scaled to
  ``factor`` of its nominal value during the window;
* ``drop`` -- request arrivals during the window are dropped with
  ``probability`` (per request *attempt*, so retries re-roll).

Everything is seeded and pure: :meth:`FaultPlan.generate` draws a chaos
timeline from ``numpy``'s seeded generator exactly once at construction, and
the same plan JSON replays bit-identically through the serving simulator
(asserted by ``verify_fault_replay`` and the fault test suite).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.atomic import atomic_write_text

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "build_fault_preset",
    "fault_presets",
]

FAULT_KINDS = ("crash", "straggler", "degraded-link", "drop")

FAULT_PLAN_VERSION = 1


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``duration`` is the crash recovery delay for ``crash`` events and the
    window length for the other kinds.  ``factor`` is the slowdown multiplier
    (>= 1) for stragglers and the remaining bandwidth fraction (0 < f <= 1)
    for degraded links; ``probability`` only applies to ``drop`` events.
    """

    kind: str
    start: float
    duration: float
    factor: float = 1.0
    probability: float = 0.0
    target: str = "replica-0"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.start < 0:
            raise ValueError("fault start must be non-negative")
        if self.duration <= 0:
            raise ValueError("fault duration must be positive")
        if self.kind == "straggler" and self.factor < 1.0:
            raise ValueError("straggler factor is a slowdown multiplier and must be >= 1")
        if self.kind == "degraded-link" and not 0.0 < self.factor <= 1.0:
            raise ValueError("degraded-link factor is a bandwidth fraction in (0, 1]")
        if self.kind == "drop" and not 0.0 <= self.probability <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "factor": self.factor,
            "probability": self.probability,
            "target": self.target,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultEvent":
        return cls(
            kind=payload["kind"],
            start=float(payload["start"]),
            duration=float(payload["duration"]),
            factor=float(payload.get("factor", 1.0)),
            probability=float(payload.get("probability", 0.0)),
            target=payload.get("target", "replica-0"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded, serialisable schedule of fault events."""

    name: str = "faults"
    seed: int = 0
    events: tuple[FaultEvent, ...] = ()
    version: int = FAULT_PLAN_VERSION

    def __post_init__(self) -> None:
        crashes = self.of_kind("crash")
        for earlier, later in zip(crashes, crashes[1:]):
            if later.start < earlier.end:
                raise ValueError(
                    f"crash windows overlap: [{earlier.start}, {earlier.end}) and "
                    f"[{later.start}, {later.end}) -- one replica cannot crash twice at once"
                )

    def of_kind(self, kind: str) -> tuple[FaultEvent, ...]:
        """Events of one kind, in start order."""
        return tuple(sorted((e for e in self.events if e.kind == kind), key=lambda e: e.start))

    @property
    def is_fault_free(self) -> bool:
        return not self.events

    def describe(self) -> str:
        by_kind = {kind: len(self.of_kind(kind)) for kind in FAULT_KINDS}
        parts = [f"{count} {kind}" for kind, count in by_kind.items() if count]
        return f"{self.name} (seed {self.seed}): " + (", ".join(parts) or "fault-free")

    # -- persistence -------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "name": self.name,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        version = payload.get("version", FAULT_PLAN_VERSION)
        if version != FAULT_PLAN_VERSION:
            raise ValueError(
                f"unsupported fault plan version {version} (expected {FAULT_PLAN_VERSION})"
            )
        return cls(
            name=payload.get("name", "faults"),
            seed=int(payload.get("seed", 0)),
            events=tuple(FaultEvent.from_dict(item) for item in payload.get("events", [])),
        )

    def save(self, path: str | Path) -> Path:
        return atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    # -- seeded generation -------------------------------------------------------

    @classmethod
    def generate(
        cls,
        horizon: float,
        seed: int = 0,
        name: str = "chaos",
        crash_rate: float = 0.0,
        recovery_s: float = 0.05,
        straggler_rate: float = 0.0,
        straggler_factor: float = 1.5,
        straggler_duration_s: float = 0.1,
        degraded_rate: float = 0.0,
        degraded_factor: float = 0.25,
        degraded_duration_s: float = 0.1,
        drop_probability: float = 0.0,
    ) -> "FaultPlan":
        """Draw a chaos timeline from Poisson event arrivals over ``horizon``.

        ``*_rate`` values are events per second (the arrivals idiom); a
        positive ``drop_probability`` adds one drop window covering the whole
        horizon.  The same arguments and seed produce the same plan.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []

        def poisson_times(rate: float) -> list[float]:
            times = []
            now = 0.0
            while rate > 0:
                now += float(rng.exponential(1.0 / rate))
                if now >= horizon:
                    break
                times.append(now)
            return times

        last_crash_end = 0.0
        for start in poisson_times(crash_rate):
            if start < last_crash_end:  # keep crash windows disjoint
                continue
            events.append(FaultEvent(kind="crash", start=start, duration=recovery_s))
            last_crash_end = start + recovery_s
        for start in poisson_times(straggler_rate):
            events.append(
                FaultEvent(
                    kind="straggler",
                    start=start,
                    duration=straggler_duration_s,
                    factor=straggler_factor,
                )
            )
        for start in poisson_times(degraded_rate):
            events.append(
                FaultEvent(
                    kind="degraded-link",
                    start=start,
                    duration=degraded_duration_s,
                    factor=degraded_factor,
                )
            )
        if drop_probability > 0:
            events.append(
                FaultEvent(
                    kind="drop", start=0.0, duration=horizon, probability=drop_probability
                )
            )
        return cls(name=name, seed=seed, events=tuple(events))


# -- presets ---------------------------------------------------------------------

#: name -> (description, builder(horizon, seed) -> FaultPlan).  Presets are
#: scale-free: event times are fractions of the traffic horizon, so the same
#: preset stresses a 0.4 s smoke burst and a 10-minute trace alike.
_PRESETS: dict[str, tuple[str, object]] = {}


def _preset(name: str, description: str):
    def register(builder):
        _PRESETS[name] = (description, builder)
        return builder

    return register


@_preset("replica-crash", "one crash at 35% of the horizon, recovery for 25% of it")
def _replica_crash(horizon: float, seed: int) -> FaultPlan:
    return FaultPlan(
        name="replica-crash",
        seed=seed,
        events=(
            FaultEvent(kind="crash", start=0.35 * horizon, duration=0.25 * horizon),
        ),
    )


@_preset("double-crash", "two crashes (25% and 65% of the horizon); pairs with --warm-spares")
def _double_crash(horizon: float, seed: int) -> FaultPlan:
    return FaultPlan(
        name="double-crash",
        seed=seed,
        events=(
            FaultEvent(kind="crash", start=0.25 * horizon, duration=0.20 * horizon),
            FaultEvent(kind="crash", start=0.65 * horizon, duration=0.20 * horizon),
        ),
    )


@_preset("straggler", "compute runs 1.75x slower across the middle 60% of the horizon")
def _straggler(horizon: float, seed: int) -> FaultPlan:
    return FaultPlan(
        name="straggler",
        seed=seed,
        events=(
            FaultEvent(
                kind="straggler", start=0.2 * horizon, duration=0.6 * horizon, factor=1.75
            ),
        ),
    )


@_preset("degraded-link", "interconnect at 25% bandwidth across the middle 60% of the horizon")
def _degraded_link(horizon: float, seed: int) -> FaultPlan:
    return FaultPlan(
        name="degraded-link",
        seed=seed,
        events=(
            FaultEvent(
                kind="degraded-link", start=0.2 * horizon, duration=0.6 * horizon, factor=0.25
            ),
        ),
    )


@_preset("drop-storm", "35% of arrival attempts dropped over the first 75% of the horizon")
def _drop_storm(horizon: float, seed: int) -> FaultPlan:
    return FaultPlan(
        name="drop-storm",
        seed=seed,
        events=(
            FaultEvent(
                kind="drop", start=0.0, duration=0.75 * horizon, probability=0.35
            ),
        ),
    )


@_preset("chaos", "seeded Poisson mix of crashes, stragglers, degraded links and drops")
def _chaos(horizon: float, seed: int) -> FaultPlan:
    return FaultPlan.generate(
        horizon=horizon,
        seed=seed,
        name="chaos",
        crash_rate=1.5 / horizon,
        recovery_s=0.1 * horizon,
        straggler_rate=1.0 / horizon,
        straggler_factor=1.5,
        straggler_duration_s=0.2 * horizon,
        degraded_rate=1.0 / horizon,
        degraded_factor=0.4,
        degraded_duration_s=0.2 * horizon,
        drop_probability=0.1,
    )


def fault_presets() -> dict[str, str]:
    """Known preset names and their one-line descriptions."""
    return {name: description for name, (description, _) in sorted(_PRESETS.items())}


def build_fault_preset(name: str, horizon: float, seed: int = 0) -> FaultPlan:
    """Instantiate a named preset over a concrete traffic horizon (seconds)."""
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    try:
        _, builder = _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault preset {name!r}; known: {sorted(_PRESETS)}"
        ) from None
    return builder(horizon, seed)
