"""Degraded-mode metrics: the report axis faults add next to TTFT/TPOT.

:func:`build_fault_stats` condenses an injector plus the serving loop's
failure accounting into one JSON-ready dict: availability over the run,
recovery-time stats, retry amplification (attempts per arriving request) and
the waste the crash windows caused.  Goodput-under-failure vs the fault-free
baseline is computed one level up, in :class:`repro.serve.report.ServeReport`,
where both arms are in hand.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

__all__ = ["build_fault_stats"]


def build_fault_stats(
    injector,
    makespan_s: float,
    num_requests: int,
    attempts: int,
    retries: int,
    failures: Iterable[Mapping] | Iterable,
    wasted_iterations: int,
    wasted_tokens: int,
) -> dict:
    """Summarise one faulted serving run.

    ``failures`` is the run's list of failure records (objects or dicts with
    an ``outcome`` field); ``attempts`` counts every arrival attempt including
    retries, so ``attempts / num_requests`` is the retry amplification.
    """

    def outcome_of(record) -> str:
        if isinstance(record, Mapping):
            return record["outcome"]
        return record.outcome

    outcomes: dict[str, int] = {"dropped": 0, "shed": 0, "timed-out": 0}
    for record in failures:
        outcome = outcome_of(record)
        outcomes[outcome] = outcomes.get(outcome, 0) + 1

    recovery = injector.recovery_times if injector is not None else []
    stats = {
        "plan": injector.plan.name if injector is not None else None,
        "seed": injector.plan.seed if injector is not None else None,
        "availability": injector.availability(makespan_s) if injector is not None else 1.0,
        "crashes": injector.crashes if injector is not None else 0,
        "failovers": injector.failovers if injector is not None else 0,
        "recovery_s": {
            "count": len(recovery),
            "mean": sum(recovery) / len(recovery) if recovery else 0.0,
            "max": max(recovery) if recovery else 0.0,
        },
        "attempts": attempts,
        "retries": retries,
        "retry_amplification": attempts / num_requests if num_requests else 1.0,
        "dropped": outcomes["dropped"],
        "shed": outcomes["shed"],
        "timed_out": outcomes["timed-out"],
        "wasted_iterations": wasted_iterations,
        "wasted_tokens": wasted_tokens,
    }
    return stats
