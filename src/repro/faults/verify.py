"""Bit-identical replay verification for faulted serving runs.

``verify_fault_replay`` is the chaos twin of ``repro.plan.verify_replay``: it
runs the same traffic through the same fault plan twice -- fresh simulator,
fresh plan cache each time -- and asserts the serialized results are
*byte-identical*, not merely numerically close.  A fault layer that only
replays approximately is useless for regression testing, so this is the
check CI and the fault test suite lean on.

Imports of ``repro.serve`` live inside the function: serve imports the fault
package at module level, so the reverse edge must stay lazy.
"""

from __future__ import annotations

import json

from repro.faults.plan import FaultPlan
from repro.faults.policy import ResiliencePolicy

__all__ = ["verify_fault_replay"]


def verify_fault_replay(
    config,
    requests,
    plan: FaultPlan,
    policy: ResiliencePolicy | None = None,
    mode: str = "overlap",
    slo=None,
) -> dict:
    """Run the faulted scenario twice and compare serialized results.

    Returns ``{"checks": {...}, "matches": bool}`` in the ``verify_replay``
    idiom: each check maps to a bool, and ``matches`` is their conjunction.
    """
    from repro.faults.injector import FaultInjector
    from repro.plans.cache import PlanCache
    from repro.serve.simulator import ServingSimulator

    def run_once() -> dict:
        simulator = ServingSimulator(
            config,
            plan_cache=PlanCache(),
            mode=mode,
            faults=FaultInjector(plan, policy),
        )
        return simulator.run(list(requests)).to_dict(slo)

    first = run_once()
    second = run_once()
    first_json = json.dumps(first, sort_keys=True)
    second_json = json.dumps(second, sort_keys=True)
    checks = {
        "payload_bytes_identical": first_json == second_json,
        "makespan_identical": first["makespan_s"] == second["makespan_s"],
        "iterations_identical": first["iterations"] == second["iterations"],
    }
    return {"checks": checks, "matches": all(checks.values())}
