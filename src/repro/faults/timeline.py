"""Piecewise-constant speed timelines for fault modelling.

A :class:`SpeedTimeline` maps simulation time to a *speed factor*: 1.0 is
nominal, values below 1.0 model a straggling resource (1/slowdown), and 0.0
models a resource that is down.  The two queries the simulators need are

* :meth:`SpeedTimeline.speed_at` -- the factor at one instant, and
* :meth:`SpeedTimeline.finish_time` -- when a task of ``work`` fault-free
  seconds finishes if it starts at ``start`` and progresses at the timeline's
  rate (work integrates across segment boundaries; zero-speed segments stall
  the task until they end).

Timelines are pure, deterministic functions of their windows, so the same
fault plan replays bit-identically.  The fault-free timeline (no windows)
returns exactly ``start + work`` -- not a numerically-equal sum -- which is
what lets an empty :class:`~repro.faults.plan.FaultPlan` degenerate to the
fault-free simulation bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SpeedTimeline", "SpeedWindow"]


@dataclass(frozen=True)
class SpeedWindow:
    """One interval during which a multiplicative speed factor applies."""

    start: float
    end: float
    speed: float

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise ValueError(f"window start {self.start} must precede end {self.end}")
        if self.speed < 0:
            raise ValueError("speed must be non-negative")


class SpeedTimeline:
    """Piecewise-constant speed factor over time (1.0 outside all windows).

    Overlapping windows compose multiplicatively: two concurrent 2x
    stragglers run the resource at 0.25 speed, and any zero-speed window
    forces the whole overlap to zero.
    """

    def __init__(self, windows: list[SpeedWindow] | None = None) -> None:
        self.windows = sorted(windows or [], key=lambda w: (w.start, w.end))
        # Precompute disjoint segments with their composed speed.
        boundaries = sorted({t for w in self.windows for t in (w.start, w.end)})
        self._segments: list[tuple[float, float, float]] = []
        for left, right in zip(boundaries, boundaries[1:]):
            speed = 1.0
            for window in self.windows:
                if window.start <= left and right <= window.end:
                    speed *= window.speed
            if speed != 1.0:
                self._segments.append((left, right, speed))

    @property
    def is_nominal(self) -> bool:
        """True when the timeline never deviates from speed 1.0."""
        return not self._segments

    def speed_at(self, time: float) -> float:
        for left, right, speed in self._segments:
            if left <= time < right:
                return speed
        return 1.0

    def finish_time(self, start: float, work: float) -> float:
        """When ``work`` fault-free seconds of work finish if started at ``start``.

        Work progresses at ``speed_at(t)`` per wall-clock second; zero-speed
        segments contribute no progress (the task stalls until the segment
        ends).  Raises if the timeline ends in an *unbounded* zero-speed
        window, which cannot happen for windows built from a finite plan.
        """
        if work < 0:
            raise ValueError("work must be non-negative")
        if self.is_nominal:
            return start + work
        now = start
        remaining = work
        for left, right, speed in self._segments:
            if right <= now:
                continue
            if remaining <= 0:
                break
            # Nominal-speed gap before this segment.
            if now < left:
                gap = left - now
                if remaining <= gap:
                    return now + remaining
                now = left
                remaining -= gap
            span = right - now
            if speed == 0.0:
                now = right
                continue
            capacity = span * speed
            if remaining <= capacity:
                return now + remaining / speed
            now = right
            remaining -= capacity
        # Past the last segment the speed is nominal again.
        return now + remaining

    def downtime_within(self, horizon: float) -> float:
        """Total zero-speed time inside ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        total = 0.0
        for left, right, speed in self._segments:
            if speed == 0.0:
                total += max(0.0, min(right, horizon) - max(left, 0.0))
        return total

    def availability(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the resource is up (speed > 0)."""
        if horizon <= 0:
            return 1.0
        return max(0.0, 1.0 - self.downtime_within(horizon) / horizon)
