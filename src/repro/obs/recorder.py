"""Flight recorder: a ring buffer of recent spans and events.

Every closed span and every ``obs.event(...)`` lands here (newest evicting
oldest past ``capacity``), so when something goes wrong -- a sweep job is
quarantined, a CLI run crashes under ``--profile`` -- the recent history can
be dumped as a JSONL artifact without having recorded everything.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path


class FlightRecorder:
    """Bounded ring buffer of span/event dicts, dumpable as JSONL."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: deque[dict] = deque(maxlen=capacity)
        self.recorded = 0  # total entries ever recorded (kept past eviction)

    def __len__(self) -> int:
        return len(self._entries)

    def record_span(self, node) -> None:
        self.recorded += 1
        self._entries.append(
            {
                "kind": "span",
                "name": node.name,
                "start_s": node.start,
                "duration_s": node.duration,
                "attrs": node.attrs,
            }
        )

    def record_event(self, name: str, time_s: float, attrs: dict | None = None) -> None:
        self.recorded += 1
        self._entries.append(
            {"kind": "event", "name": name, "time_s": time_s, "attrs": attrs or {}}
        )

    def entries(self) -> list[dict]:
        return list(self._entries)

    def dump_jsonl(self, path: str | Path) -> Path:
        """Write one JSON object per line (oldest first) and return the path."""
        import json

        from repro.atomic import atomic_write_text

        lines = "".join(json.dumps(entry, sort_keys=True) + "\n" for entry in self._entries)
        return atomic_write_text(path, lines)
