"""Injectable clocks of the observability layer.

Every timestamp the toolkit records flows through one of these clocks.  The
:class:`SystemClock` wraps ``time.perf_counter`` and is the only place in
``src/repro/`` allowed to call it (enforced by the banned-API lint rule and
``tests/test_no_direct_time.py``); the :class:`FakeClock` advances by a fixed
step per reading, so span trees and profile JSON are byte-stable in tests.
"""

from __future__ import annotations

import time


class SystemClock:
    """Monotonic wall clock (``time.perf_counter``)."""

    def now(self) -> float:
        return time.perf_counter()


class FakeClock:
    """Deterministic clock: every reading advances the time by ``step``.

    A span that wraps no further clock readings therefore lasts exactly one
    step, and nested spans consume ticks in tree order -- the same code path
    always produces the same span tree, byte for byte.
    """

    def __init__(self, start: float = 0.0, step: float = 1.0) -> None:
        self._now = start
        self.step = step

    def now(self) -> float:
        current = self._now
        self._now += self.step
        return current

    def advance(self, seconds: float) -> None:
        """Jump the clock forward without consuming a reading."""
        self._now += seconds
