"""Metrics registry: counters, gauges and histograms with labels.

One :class:`MetricsRegistry` per observability session.  Metrics are keyed by
``name{label=value,...}`` (labels sorted, Prometheus-style), so the same name
with the same labels always resolves to the same object regardless of call
site or keyword order, and ``snapshot()`` flattens the registry into a
JSON-stable dict.  The module-level accessors in :mod:`repro.obs.session`
return the shared null metrics when observability is off, so an
``obs.counter("x").inc()`` on a hot path costs two no-op calls.
"""

from __future__ import annotations

import math

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_key",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]


def metric_key(name: str, labels: dict) -> str:
    """The flattened series key: ``name`` or ``name{k=v,...}`` (keys sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


def _nearest_rank(ordered: list[float], p: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list."""
    rank = max(1, math.ceil(p / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


class Histogram:
    """Observed-value distribution summarised by nearest-rank percentiles."""

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile (``p`` in [0, 100]); 0.0 when empty."""
        if not self.values:
            return 0.0
        return _nearest_rank(sorted(self.values), p)

    def summary(self) -> dict:
        if not self.values:
            return {"count": 0}
        # One sort serves min/max and every percentile of the snapshot; the
        # sum is taken in observation order so it stays bit-identical to the
        # incremental accumulation the old per-call path produced.
        ordered = sorted(self.values)
        total = sum(self.values)
        return {
            "count": len(ordered),
            "sum": total,
            "min": ordered[0],
            "max": ordered[-1],
            "mean": total / len(ordered),
            "p50": _nearest_rank(ordered, 50),
            "p90": _nearest_rank(ordered, 90),
            "p99": _nearest_rank(ordered, 99),
        }


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Label-keyed counters / gauges / histograms with a dict snapshot."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels) -> Counter:
        key = metric_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = metric_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, **labels) -> Histogram:
        key = metric_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram()
        return metric

    def snapshot(self) -> dict:
        """JSON-stable flattening: identical runs produce identical dicts."""
        return {
            "counters": {key: self._counters[key].value for key in sorted(self._counters)},
            "gauges": {key: self._gauges[key].value for key in sorted(self._gauges)},
            "histograms": {
                key: self._histograms[key].summary() for key in sorted(self._histograms)
            },
        }
