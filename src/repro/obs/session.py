"""The ambient observability session and its module-level accessors.

Instrumented library code never threads a tracer through seven subsystems'
call signatures; it calls the module-level helpers::

    from repro import obs

    with obs.span("plan_store.build", shape=str(problem.shape)):
        ...
    obs.counter("plan_store.hits").inc()

By default no session is active and every helper returns a shared null
object, so the disabled cost of an instrumented hot path is a global read
plus a no-op call.  ``with obs.observe() as session:`` activates a session
(tracer + metrics registry + flight recorder on one clock); afterwards
``session.snapshot()`` freezes everything into a :class:`ProfileSnapshot`
-- the payload behind ``--profile`` / ``--profile-json`` and the
``observability`` section of the API reports.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path

from repro.obs.clock import SystemClock
from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    MetricsRegistry,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.tracer import NULL_SPAN, Tracer

__all__ = [
    "ObsSession",
    "ProfileSnapshot",
    "PROFILE_VERSION",
    "observe",
    "enabled",
    "current",
    "span",
    "event",
    "counter",
    "gauge",
    "histogram",
    "now",
    "dump_flight",
]

PROFILE_VERSION = 1

#: The process-wide ambient session; ``None`` means observability is off.
_SESSION: "ObsSession | None" = None

#: Fallback clock of :func:`now` outside a session (deadlines, heartbeats).
_SYSTEM_CLOCK = SystemClock()


class ProfileSnapshot:
    """One frozen profile: span trees, phase rollup, metrics, recorder stats."""

    def __init__(self, payload: dict) -> None:
        self.payload = payload

    def to_dict(self) -> dict:
        return self.payload

    def to_json(self) -> str:
        return json.dumps(self.payload, indent=2, sort_keys=True) + "\n"

    def save(self, path: str | Path) -> Path:
        from repro.atomic import atomic_write_text

        return atomic_write_text(path, self.to_json())

    @property
    def command(self) -> str | None:
        return self.payload["command"]

    @property
    def total_s(self) -> float | None:
        return self.payload["total_s"]

    @property
    def phases(self) -> list[dict]:
        return self.payload["phases"]

    @property
    def spans(self) -> list[dict]:
        return self.payload["spans"]

    @property
    def metrics(self) -> dict:
        return self.payload["metrics"]

    def phase_table(self) -> str:
        """The per-phase wall-time table ``--profile`` prints."""
        from repro.analysis.reporting import format_table

        total = self.total_s
        rows = []
        for phase in self.phases:
            share = phase["total_s"] / total if total else 0.0
            rows.append(
                [phase["name"], phase["count"], f"{phase['total_s']:.6f}", f"{share * 100:.1f}%"]
            )
        title = f"{self.command or 'profile'}: phases"
        if total is not None:
            title += f" (total {total:.6f} s)"
        return format_table(["phase", "count", "total (s)", "share"], rows, title=title)

    def metrics_table(self) -> str:
        """Counters, gauges and histogram summaries as one table."""
        from repro.analysis.reporting import format_table

        rows = []
        for key, value in self.metrics["counters"].items():
            rows.append([key, "counter", str(value)])
        for key, value in self.metrics["gauges"].items():
            rows.append([key, "gauge", f"{value:g}"])
        for key, summary in self.metrics["histograms"].items():
            if summary["count"]:
                detail = (
                    f"count={summary['count']} mean={summary['mean']:.6g} "
                    f"p50={summary['p50']:.6g} p99={summary['p99']:.6g}"
                )
            else:
                detail = "count=0"
            rows.append([key, "histogram", detail])
        return format_table(["metric", "type", "value"], rows, title="metrics")


def _aggregate_phases(nodes: list, total: float | None) -> list[dict]:
    """Roll sibling spans up by name, first-appearance order, plus untracked."""
    order: list[str] = []
    agg: dict[str, dict] = {}
    for node in nodes:
        entry = agg.get(node.name)
        if entry is None:
            entry = agg[node.name] = {"name": node.name, "count": 0, "total_s": 0.0}
            order.append(node.name)
        entry["count"] += 1
        entry["total_s"] += node.duration
    phases = [agg[name] for name in order]
    if total is not None:
        tracked = sum(entry["total_s"] for entry in phases)
        phases.append(
            {"name": "(untracked)", "count": 0, "total_s": max(0.0, total - tracked)}
        )
    return phases


class ObsSession:
    """One observability session: tracer, metrics, flight recorder, clock."""

    def __init__(self, clock=None, flight_capacity: int = 512) -> None:
        self.clock = clock or SystemClock()
        self.recorder = FlightRecorder(flight_capacity)
        self.tracer = Tracer(self.clock, recorder=self.recorder)
        self.metrics = MetricsRegistry()

    def snapshot(self, command: str | None = None) -> ProfileSnapshot:
        """Freeze the session into a :class:`ProfileSnapshot`.

        With a single root span (the CLI's ``repro <command>`` wrapper) the
        phases are that root's direct children and ``total_s`` its duration,
        closed by an ``(untracked)`` row so the rows sum to the total exactly;
        with several roots, the roots themselves are the phases.
        """
        roots = self.tracer.roots
        if len(roots) == 1:
            root = roots[0]
            total = root.duration
            phases = _aggregate_phases(root.children, total)
            command = command or root.name
        else:
            total = sum(node.duration for node in roots) if roots else None
            phases = _aggregate_phases(roots, None)
        return ProfileSnapshot(
            {
                "version": PROFILE_VERSION,
                "command": command,
                "total_s": total,
                "phases": phases,
                "spans": self.tracer.root_dicts(),
                "metrics": self.metrics.snapshot(),
                "flight_recorder": {
                    "capacity": self.recorder.capacity,
                    "recorded": self.recorder.recorded,
                },
            }
        )

    def dump_flight(self, path: str | Path) -> Path:
        """Dump the flight-recorder ring buffer as a JSONL artifact."""
        return self.recorder.dump_jsonl(path)


@contextmanager
def observe(clock=None, flight_capacity: int = 512):
    """Activate an observability session for the duration of the block.

    Re-entrant: an inner ``observe()`` joins the active session instead of
    replacing it (so ``api.plan(profile=True)`` composes with a CLI that
    already opened one).
    """
    global _SESSION
    if _SESSION is not None:
        yield _SESSION
        return
    session = ObsSession(clock=clock, flight_capacity=flight_capacity)
    _SESSION = session
    try:
        yield session
    finally:
        _SESSION = None


def enabled() -> bool:
    return _SESSION is not None


def current() -> ObsSession | None:
    return _SESSION


def span(name: str, **attrs):
    """A context-manager span on the active tracer (no-op when disabled)."""
    session = _SESSION
    if session is None:
        return NULL_SPAN
    return session.tracer.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """Record a point-in-time event into the flight recorder."""
    session = _SESSION
    if session is not None:
        session.recorder.record_event(name, session.clock.now(), attrs)


def counter(name: str, **labels):
    session = _SESSION
    if session is None:
        return NULL_COUNTER
    return session.metrics.counter(name, **labels)


def gauge(name: str, **labels):
    session = _SESSION
    if session is None:
        return NULL_GAUGE
    return session.metrics.gauge(name, **labels)


def histogram(name: str, **labels):
    session = _SESSION
    if session is None:
        return NULL_HISTOGRAM
    return session.metrics.histogram(name, **labels)


def now() -> float:
    """The ambient clock reading (the session's clock, else the system's)."""
    session = _SESSION
    return (session.clock if session is not None else _SYSTEM_CLOCK).now()


def dump_flight(path: str | Path) -> Path | None:
    """Dump the active session's flight recorder; ``None`` when disabled."""
    session = _SESSION
    if session is None:
        return None
    return session.dump_flight(path)
