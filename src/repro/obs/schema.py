"""Validation of profile JSON against the checked-in schema.

The container bakes no ``jsonschema`` package in, so this module implements
the small JSON-Schema subset ``profile_schema.json`` actually uses: ``type``
(single or list), ``required``, ``properties``, ``items``,
``additionalProperties`` (as a schema), ``enum`` and local ``$ref`` into
``#/definitions``.  The CI obs-smoke job runs it over every subcommand's
``--profile-json`` output via ``python -m repro.obs.validate``.
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path

__all__ = ["load_schema", "validate_instance", "validate_profile"]

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


@lru_cache(maxsize=1)
def load_schema() -> dict:
    """The committed profile schema (``profile_schema.json`` next to this module)."""
    path = Path(__file__).with_name("profile_schema.json")
    return json.loads(path.read_text(encoding="utf-8"))


def _resolve_ref(ref: str, root: dict) -> dict:
    if not ref.startswith("#/"):
        raise ValueError(f"only local $ref is supported, got {ref!r}")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def _validate(value, schema: dict, root: dict, path: str, errors: list[str]) -> None:
    ref = schema.get("$ref")
    if ref is not None:
        schema = _resolve_ref(ref, root)

    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            errors.append(f"{path}: expected type {expected}, got {type(value).__name__}")
            return

    enum = schema.get("enum")
    if enum is not None and value not in enum:
        errors.append(f"{path}: {value!r} not in enum {enum}")

    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                errors.append(f"{path}: missing required key {name!r}")
        properties = schema.get("properties", {})
        for name, subschema in properties.items():
            if name in value:
                _validate(value[name], subschema, root, f"{path}.{name}", errors)
        additional = schema.get("additionalProperties")
        if isinstance(additional, dict):
            for name, item in value.items():
                if name not in properties:
                    _validate(item, additional, root, f"{path}.{name}", errors)

    if isinstance(value, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for index, item in enumerate(value):
                _validate(item, items, root, f"{path}[{index}]", errors)


def validate_instance(value, schema: dict) -> list[str]:
    """Validate ``value`` against ``schema``; returns the error list (empty = ok)."""
    errors: list[str] = []
    _validate(value, schema, schema, "$", errors)
    return errors


def validate_profile(payload: dict) -> list[str]:
    """Validate one profile snapshot dict against the committed schema."""
    return validate_instance(payload, load_schema())
