"""Unified observability layer: spans, metrics, flight recorder, profiles.

Three pieces on one injectable clock:

* a span-based tracer (:mod:`repro.obs.tracer`) -- nested context-manager
  spans whose trees are byte-stable under the deterministic
  :class:`~repro.obs.clock.FakeClock`;
* a metrics registry (:mod:`repro.obs.metrics`) -- labelled counters /
  gauges / histograms with a JSON-stable snapshot;
* a flight recorder (:mod:`repro.obs.recorder`) -- a ring buffer of recent
  spans/events dumped as JSONL when a sweep job is quarantined or a CLI run
  crashes.

The default state is *off*: the module-level accessors (``obs.span``,
``obs.counter``, ...) return shared null objects until a session is opened
with :func:`~repro.obs.session.observe`, so instrumentation on hot paths
costs nothing when nobody is profiling.  ``--profile`` on every CLI
subcommand (and ``profile=True`` on the :mod:`repro.api` functions) opens a
session, wraps the run in a root span and renders the
:class:`~repro.obs.session.ProfileSnapshot` phase table.
"""

from repro.obs.clock import FakeClock, SystemClock
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, metric_key
from repro.obs.recorder import FlightRecorder
from repro.obs.schema import load_schema, validate_profile
from repro.obs.session import (
    PROFILE_VERSION,
    ObsSession,
    ProfileSnapshot,
    counter,
    current,
    dump_flight,
    enabled,
    event,
    gauge,
    histogram,
    now,
    observe,
    span,
)
from repro.obs.tracer import SpanNode, Tracer

__all__ = [
    "Counter",
    "FakeClock",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsSession",
    "PROFILE_VERSION",
    "ProfileSnapshot",
    "SpanNode",
    "SystemClock",
    "Tracer",
    "counter",
    "current",
    "dump_flight",
    "enabled",
    "event",
    "gauge",
    "histogram",
    "load_schema",
    "metric_key",
    "now",
    "observe",
    "span",
    "validate_profile",
]
