"""Span-based tracer: nested context-manager spans on an injectable clock.

A :class:`Tracer` builds a forest of :class:`SpanNode` -- one tree per
top-level ``with tracer.span(...)`` block, children nested by ``with``
scoping.  Durations come from whatever clock the tracer was given, so tests
drive it with :class:`~repro.obs.clock.FakeClock` and assert the resulting
tree bytes.  When observability is disabled the module-level helpers in
:mod:`repro.obs.session` return the shared :data:`NULL_SPAN` instead, whose
``__enter__``/``__exit__`` do nothing -- instrumented hot paths cost two
no-op calls.
"""

from __future__ import annotations


class SpanNode:
    """One span of the tree: name, start/end time, attributes, children."""

    __slots__ = ("name", "start", "end", "attrs", "children")

    def __init__(self, name: str, start: float, attrs: dict | None = None) -> None:
        self.name = name
        self.start = start
        self.end: float | None = None
        self.attrs = attrs or {}
        self.children: list[SpanNode] = []

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def note(self, **attrs) -> None:
        """Attach attributes discovered while the span is running."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_s": self.start,
            "duration_s": self.duration,
            "attrs": self.attrs,
            "children": [child.to_dict() for child in self.children],
        }


class _ActiveSpan:
    """The context manager one ``tracer.span(...)`` call returns."""

    __slots__ = ("_tracer", "_name", "_attrs", "_node")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._node: SpanNode | None = None

    def __enter__(self) -> SpanNode:
        self._node = self._tracer._open(self._name, self._attrs)
        return self._node

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close(self._node, failed=exc_type is not None)
        return False


class _NullSpan:
    """Shared no-op span: the disabled path of every ``obs.span(...)`` call."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def note(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Builds span trees; one instance per observability session.

    ``max_nodes`` is a runaway guard: beyond it new spans become no-ops so a
    pathological caller (a million-job sweep under ``--profile``) degrades to
    a truncated tree instead of unbounded memory.
    """

    def __init__(self, clock, recorder=None, max_nodes: int = 100_000) -> None:
        self.clock = clock
        self.recorder = recorder
        self.max_nodes = max_nodes
        self.roots: list[SpanNode] = []
        self._stack: list[SpanNode] = []
        self._nodes = 0

    def span(self, name: str, **attrs):
        if self._nodes >= self.max_nodes:
            return NULL_SPAN
        return _ActiveSpan(self, name, attrs)

    def _open(self, name: str, attrs: dict) -> SpanNode:
        node = SpanNode(name, self.clock.now(), dict(attrs))
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        self._nodes += 1
        return node

    def _close(self, node: SpanNode, failed: bool = False) -> None:
        node.end = self.clock.now()
        if failed:
            node.attrs["failed"] = True
        if self._stack and self._stack[-1] is node:
            self._stack.pop()
        elif node in self._stack:  # pragma: no cover - defensive (mis-nested exit)
            while self._stack and self._stack.pop() is not node:
                pass
        if self.recorder is not None:
            self.recorder.record_span(node)

    def root_dicts(self) -> list[dict]:
        return [root.to_dict() for root in self.roots]
