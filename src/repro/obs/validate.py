"""``python -m repro.obs.validate`` -- validate profile JSON files.

Exit 0 when every file conforms to the committed profile schema, 1 with the
per-file errors on stderr otherwise.  The CI obs-smoke job runs this over
the ``--profile-json`` output of every subcommand.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.schema import validate_profile


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="validate --profile-json files against the committed schema",
    )
    parser.add_argument("paths", nargs="+", metavar="PROFILE_JSON")
    args = parser.parse_args(argv)

    failed = 0
    for path in args.paths:
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            print(f"{path}: unreadable profile JSON: {error}", file=sys.stderr)
            failed += 1
            continue
        errors = validate_profile(payload)
        if errors:
            failed += 1
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            phases = len(payload.get("phases", []))
            print(f"{path}: ok ({phases} phases, command {payload.get('command')!r})")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
