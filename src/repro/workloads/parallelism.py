"""Parallelism configurations (TP / PP / DP / EP)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ParallelismConfig:
    """How a model is partitioned across GPUs.

    Only the degrees that change the "GEMM + collective" patterns matter here:
    tensor parallelism shrinks the per-GPU GEMM along one dimension and adds an
    AllReduce (or ReduceScatter/AllGather pair), expert parallelism adds the
    All-to-All of MoE layers, data/pipeline parallelism scale the world size.
    """

    tp: int = 1
    pp: int = 1
    dp: int = 1
    ep: int = 1

    def __post_init__(self) -> None:
        for name, value in ("tp", self.tp), ("pp", self.pp), ("dp", self.dp), ("ep", self.ep):
            if value < 1:
                raise ValueError(f"{name} degree must be >= 1, got {value}")

    @property
    def world_size(self) -> int:
        """Total number of GPUs (EP shares ranks with DP in Megatron-style setups)."""
        return self.tp * self.pp * max(self.dp, self.ep)

    @property
    def uses_tensor_parallel_collectives(self) -> bool:
        return self.tp > 1

    @property
    def uses_expert_parallel_collectives(self) -> bool:
        return self.ep > 1

    def shard_columns(self, columns: int) -> int:
        """Per-GPU width of a column-parallel weight."""
        if columns % self.tp != 0:
            raise ValueError(f"{columns} columns not divisible by tp={self.tp}")
        return columns // self.tp

    def shard_rows(self, rows: int) -> int:
        """Per-GPU height of a row-parallel weight."""
        if rows % self.tp != 0:
            raise ValueError(f"{rows} rows not divisible by tp={self.tp}")
        return rows // self.tp

    def describe(self) -> str:
        parts = []
        for name, value in ("TP", self.tp), ("PP", self.pp), ("DP", self.dp), ("EP", self.ep):
            if value > 1:
                parts.append(f"{name}={value}")
        return ", ".join(parts) if parts else "single GPU"
