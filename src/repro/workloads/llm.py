"""Dense-LLM layer workloads (Llama-style) under tensor parallelism.

The paper's end-to-end evaluation replaces the "linear layer + collective"
pairs of real frameworks (vLLM / Megatron-LM) with FlashOverlap.  Here a
decoder layer is described as a stream of operators: the tensor-parallel GEMMs
that are followed by a collective (the overlap targets), the GEMMs that are
not, and the remaining compute (attention, normalisation, element-wise), so
that the Fig. 4 latency-share breakdown and the Fig. 12 end-to-end speedups
can be derived from the same substrate models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.primitives import CollectiveKind
from repro.comm.topology import Topology
from repro.core.config import OverlapProblem
from repro.gpu.device import GPUSpec
from repro.gpu.epilogue import ElementwiseKernelModel
from repro.gpu.gemm import GemmKernelModel, GemmShape
from repro.workloads.operators import OperatorInstance
from repro.workloads.parallelism import ParallelismConfig

#: Fraction of peak tensor throughput achieved by fused attention kernels.
ATTENTION_EFFICIENCY = 0.5


@dataclass(frozen=True)
class ModelConfig:
    """Dense transformer configuration (the fields the workloads need)."""

    name: str
    hidden_size: int
    intermediate_size: int
    num_layers: int
    num_heads: int
    num_kv_heads: int
    vocab_size: int = 128256

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def kv_hidden(self) -> int:
        return self.num_kv_heads * self.head_dim


LLAMA3_70B = ModelConfig(
    name="Llama3-70B",
    hidden_size=8192,
    intermediate_size=28672,
    num_layers=80,
    num_heads=64,
    num_kv_heads=8,
)

LLAMA2_7B = ModelConfig(
    name="Llama2-7B",
    hidden_size=4096,
    intermediate_size=11008,
    num_layers=32,
    num_heads=32,
    num_kv_heads=32,
    vocab_size=32000,
)


def _gemm_latency(shape: GemmShape, device: GPUSpec) -> float:
    """Duration of a non-overlapped (compute-only) GEMM."""
    return GemmKernelModel(shape, device).duration()


def _attention_latency(tokens: int, model: ModelConfig, parallelism: ParallelismConfig,
                       device: GPUSpec, causal: bool = True) -> float:
    """Rough fused-attention latency: score + value FLOPs at reduced efficiency."""
    flops = 4.0 * tokens * tokens * model.hidden_size / parallelism.tp
    if causal:
        flops /= 2.0
    return flops / (device.flops_per_second * ATTENTION_EFFICIENCY)


def _elementwise_latency(elements: int, device: GPUSpec, passes: int = 1) -> float:
    model = ElementwiseKernelModel(device)
    return passes * model.duration(elements)


def llm_inference_layer(
    model: ModelConfig,
    tokens: int,
    parallelism: ParallelismConfig,
    device: GPUSpec,
    topology: Topology,
) -> list[OperatorInstance]:
    """One decoder layer of TP inference (Megatron-style row/column split).

    The two row-parallel projections (attention output and MLP down) are each
    followed by an AllReduce -- these are the overlap targets.  Everything
    else (column-parallel GEMMs, fused attention, norms) contributes to
    "others".
    """
    tp = parallelism.tp
    hidden = model.hidden_size
    inter = model.intermediate_size
    ops: list[OperatorInstance] = []

    qkv_cols = (hidden + 2 * model.kv_hidden) // tp
    ops.append(
        OperatorInstance(
            name="qkv-proj",
            other_latency=_gemm_latency(GemmShape(tokens, qkv_cols, hidden), device),
        )
    )
    ops.append(
        OperatorInstance(
            name="attention-core",
            other_latency=_attention_latency(tokens, model, parallelism, device),
        )
    )
    ops.append(
        OperatorInstance(
            name="attn-out-proj+AR",
            problem=OverlapProblem(
                shape=GemmShape(tokens, hidden, hidden // tp),
                device=device,
                topology=topology,
                collective=CollectiveKind.ALL_REDUCE,
            ),
        )
    )
    ops.append(
        OperatorInstance(
            name="mlp-up-gate",
            other_latency=_gemm_latency(GemmShape(tokens, 2 * inter // tp, hidden), device),
        )
    )
    ops.append(
        OperatorInstance(
            name="mlp-down+AR",
            problem=OverlapProblem(
                shape=GemmShape(tokens, hidden, inter // tp),
                device=device,
                topology=topology,
                collective=CollectiveKind.ALL_REDUCE,
            ),
        )
    )
    ops.append(
        OperatorInstance(
            name="norms+residual+rotary",
            other_latency=_elementwise_latency(tokens * hidden, device, passes=6),
        )
    )
    return ops


def llm_training_layer(
    model: ModelConfig,
    tokens: int,
    parallelism: ParallelismConfig,
    device: GPUSpec,
    topology: Topology,
) -> list[OperatorInstance]:
    """One decoder layer of TP training (forward + backward).

    With sequence parallelism the forward row-parallel GEMMs are followed by a
    ReduceScatter, and the backward weight-gradient GEMMs are followed by a
    ReduceScatter of the gradients -- the GEMM+RS pattern of Sec. 2.3.2.
    AllGathers and the data-gradient GEMMs are not data-dependent on a single
    preceding GEMM and stay in "others".
    """
    tp = parallelism.tp
    hidden = model.hidden_size
    inter = model.intermediate_size
    ops: list[OperatorInstance] = []

    forward = llm_inference_layer(model, tokens, parallelism, device, topology)
    # Training uses ReduceScatter instead of AllReduce after the row-parallel GEMMs.
    for op in forward:
        if op.problem is not None:
            ops.append(
                OperatorInstance(
                    name=op.name.replace("+AR", "+RS"),
                    problem=op.problem.with_collective(CollectiveKind.REDUCE_SCATTER),
                )
            )
        else:
            ops.append(op)

    # Backward data gradients: transposed GEMMs, no data-dependent collective.
    ops.append(
        OperatorInstance(
            name="bwd-dgrad-gemms",
            other_latency=(
                _gemm_latency(GemmShape(tokens, hidden, hidden // tp), device)
                + _gemm_latency(GemmShape(tokens, inter // tp, hidden), device)
                + _gemm_latency(GemmShape(tokens, hidden, inter // tp), device)
                + _gemm_latency(GemmShape(tokens, (hidden + 2 * model.kv_hidden) // tp, hidden), device)
            ),
        )
    )
    ops.append(
        OperatorInstance(
            name="bwd-attention",
            other_latency=2.0 * _attention_latency(tokens, model, parallelism, device),
        )
    )
    # Backward weight gradients followed by gradient ReduceScatter (FSDP-style).
    ops.append(
        OperatorInstance(
            name="bwd-wgrad-out-proj+RS",
            problem=OverlapProblem(
                shape=GemmShape(hidden, hidden // tp, tokens),
                device=device,
                topology=topology,
                collective=CollectiveKind.REDUCE_SCATTER,
            ),
        )
    )
    ops.append(
        OperatorInstance(
            name="bwd-wgrad-mlp-down+RS",
            problem=OverlapProblem(
                shape=GemmShape(inter // tp, hidden, tokens),
                device=device,
                topology=topology,
                collective=CollectiveKind.REDUCE_SCATTER,
            ),
        )
    )
    ops.append(
        OperatorInstance(
            name="bwd-others(allgather, norms, optimizer)",
            other_latency=_elementwise_latency(tokens * hidden, device, passes=10),
        )
    )
    return ops
