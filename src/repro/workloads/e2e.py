"""End-to-end workloads of the paper's Table 4.

Each builder returns an :class:`~repro.workloads.operators.EndToEndWorkload`
whose operator stream describes one transformer layer of the application; the
``layers`` field repeats it (the paper truncates the training models to 8 / 4
layers so that they fit on one node, which is mirrored here).

| Application      | Model            | Parallelism   | Input size            |
|------------------|------------------|---------------|-----------------------|
| LLM inference    | Llama3-70B       | TP=8          | chunk_size = 16384    |
| LLM training     | Mixtral-8x7B     | EP=4, TP=2    | input tokens = 32768  |
| LLM training     | Llama3-70B       | TP=8          | input tokens = 16384  |
| T2V generation   | Step-Video-T2V   | TP=4          | input tokens = 33792  |
"""

from __future__ import annotations

from repro.comm.topology import Topology, a800_nvlink
from repro.core.config import DEFAULT_SETTINGS, OverlapSettings
from repro.gpu.device import A800, GPUSpec
from repro.workloads.llm import LLAMA2_7B, LLAMA3_70B, llm_inference_layer, llm_training_layer
from repro.workloads.moe import MIXTRAL_8X7B, moe_training_layer
from repro.workloads.operators import EndToEndWorkload, OperatorInstance
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.t2v import STEP_VIDEO_T2V, t2v_inference_layer

__all__ = [
    "EndToEndWorkload",
    "OperatorInstance",
    "llama3_inference_workload",
    "llama3_training_workload",
    "llama2_training_workload",
    "mixtral_training_workload",
    "step_video_workload",
    "paper_workloads",
]


def llama3_inference_workload(
    chunk_size: int = 16384,
    device: GPUSpec = A800,
    topology: Topology | None = None,
    layers: int = 8,
    settings: OverlapSettings = DEFAULT_SETTINGS,
) -> EndToEndWorkload:
    """Llama3-70B prefill under TP=8 (vLLM-style chunked prefill)."""
    parallelism = ParallelismConfig(tp=8)
    topology = topology or a800_nvlink(parallelism.tp)
    ops = llm_inference_layer(LLAMA3_70B, chunk_size, parallelism, device, topology)
    return EndToEndWorkload(
        name="Llama3-70B inference (TP=8)", operators=ops, layers=layers, settings=settings
    )


def llama3_training_workload(
    input_tokens: int = 16384,
    device: GPUSpec = A800,
    topology: Topology | None = None,
    layers: int = 8,
    settings: OverlapSettings = DEFAULT_SETTINGS,
) -> EndToEndWorkload:
    """Llama3-70B training (8 layers) under TP=8 with sequence parallelism."""
    parallelism = ParallelismConfig(tp=8)
    topology = topology or a800_nvlink(parallelism.tp)
    ops = llm_training_layer(LLAMA3_70B, input_tokens, parallelism, device, topology)
    return EndToEndWorkload(
        name="Llama3-70B training (TP=8)", operators=ops, layers=layers, settings=settings
    )


def llama2_training_workload(
    input_tokens: int = 8192,
    device: GPUSpec = A800,
    topology: Topology | None = None,
    layers: int = 8,
    settings: OverlapSettings = DEFAULT_SETTINGS,
) -> EndToEndWorkload:
    """Llama2-7B training under TP=4 (the Fig. 4 profiling workload).

    Pipeline parallelism (PP=2 in the paper) splits layers across stages but
    does not change the per-layer "GEMM + collective" pattern, so only the
    tensor-parallel degree matters here.
    """
    parallelism = ParallelismConfig(tp=4, pp=2)
    topology = topology or a800_nvlink(parallelism.tp)
    ops = llm_training_layer(LLAMA2_7B, input_tokens, parallelism, device, topology)
    return EndToEndWorkload(
        name="Llama2-7B training (TP=4, PP=2)", operators=ops, layers=layers, settings=settings
    )


def mixtral_training_workload(
    input_tokens: int = 32768,
    device: GPUSpec = A800,
    topology: Topology | None = None,
    layers: int = 4,
    settings: OverlapSettings = DEFAULT_SETTINGS,
) -> EndToEndWorkload:
    """Mixtral-8x7B training (4 layers) under EP=4, TP=2."""
    parallelism = ParallelismConfig(tp=2, ep=4)
    topology = topology or a800_nvlink(parallelism.world_size)
    ops = moe_training_layer(MIXTRAL_8X7B, input_tokens, parallelism, device, topology)
    return EndToEndWorkload(
        name="Mixtral-8x7B training (EP=4, TP=2)", operators=ops, layers=layers, settings=settings
    )


def step_video_workload(
    input_tokens: int = 33792,
    device: GPUSpec = A800,
    topology: Topology | None = None,
    layers: int = 8,
    settings: OverlapSettings = DEFAULT_SETTINGS,
) -> EndToEndWorkload:
    """Step-Video-T2V DiT inference under TP=4."""
    parallelism = ParallelismConfig(tp=4)
    topology = topology or a800_nvlink(parallelism.tp)
    ops = t2v_inference_layer(STEP_VIDEO_T2V, input_tokens, parallelism, device, topology)
    return EndToEndWorkload(
        name="Step-Video-T2V (TP=4)", operators=ops, layers=layers, settings=settings
    )


def paper_workloads(settings: OverlapSettings = DEFAULT_SETTINGS) -> list[EndToEndWorkload]:
    """All four Table 4 applications with their default parameters."""
    return [
        llama3_inference_workload(settings=settings),
        mixtral_training_workload(settings=settings),
        llama3_training_workload(settings=settings),
        step_video_workload(settings=settings),
    ]
