"""End-to-end workloads of the paper's Table 4.

Each builder returns an :class:`~repro.workloads.operators.EndToEndWorkload`
whose operator stream describes one transformer layer of the application; the
``layers`` field repeats it (the paper truncates the training models to 8 / 4
layers so that they fit on one node, which is mirrored here).

| Application      | Model            | Parallelism   | Input size            |
|------------------|------------------|---------------|-----------------------|
| LLM inference    | Llama3-70B       | TP=8          | chunk_size = 16384    |
| LLM training     | Mixtral-8x7B     | EP=4, TP=2    | input tokens = 32768  |
| LLM training     | Llama3-70B       | TP=8          | input tokens = 16384  |
| T2V generation   | Step-Video-T2V   | TP=4          | input tokens = 33792  |
"""

from __future__ import annotations

from repro.comm.topology import Topology, a800_nvlink
from repro.core.config import DEFAULT_SETTINGS, OverlapSettings
from repro.gpu.device import A800, GPUSpec
from repro.workloads.llm import LLAMA2_7B, LLAMA3_70B, llm_inference_layer, llm_training_layer
from repro.workloads.moe import MIXTRAL_8X7B, moe_training_layer
from repro.workloads.operators import EndToEndWorkload, OperatorInstance
from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.t2v import STEP_VIDEO_T2V, t2v_inference_layer

__all__ = [
    "EndToEndWorkload",
    "OperatorInstance",
    "llama3_inference_workload",
    "llama3_training_workload",
    "llama2_training_workload",
    "mixtral_training_workload",
    "step_video_workload",
    "paper_workloads",
    "workload_builders",
    "build_workload",
]


def _tp_parallelism(topology: Topology | None, default_tp: int, pp: int = 1):
    """TP degree consistent with the collective span.

    With no explicit topology, the paper's degree is used and the topology is
    built to match.  An explicit topology (e.g. a multi-node placement from
    ``--nodes``) instead *re-derives* TP from its GPU count, so the sharded
    GEMM shapes and the collective group size always describe one realizable
    configuration.
    """
    if topology is None:
        parallelism = ParallelismConfig(tp=default_tp, pp=pp)
        return parallelism, a800_nvlink(default_tp)
    return ParallelismConfig(tp=topology.n_gpus, pp=pp), topology


def llama3_inference_workload(
    chunk_size: int = 16384,
    device: GPUSpec = A800,
    topology: Topology | None = None,
    layers: int = 8,
    settings: OverlapSettings = DEFAULT_SETTINGS,
) -> EndToEndWorkload:
    """Llama3-70B prefill under TP=8 (vLLM-style chunked prefill)."""
    parallelism, topology = _tp_parallelism(topology, default_tp=8)
    ops = llm_inference_layer(LLAMA3_70B, chunk_size, parallelism, device, topology)
    return EndToEndWorkload(
        name=f"Llama3-70B inference (TP={parallelism.tp})", operators=ops, layers=layers, settings=settings
    )


def llama3_training_workload(
    input_tokens: int = 16384,
    device: GPUSpec = A800,
    topology: Topology | None = None,
    layers: int = 8,
    settings: OverlapSettings = DEFAULT_SETTINGS,
) -> EndToEndWorkload:
    """Llama3-70B training (8 layers) under TP=8 with sequence parallelism."""
    parallelism, topology = _tp_parallelism(topology, default_tp=8)
    ops = llm_training_layer(LLAMA3_70B, input_tokens, parallelism, device, topology)
    return EndToEndWorkload(
        name=f"Llama3-70B training (TP={parallelism.tp})", operators=ops, layers=layers, settings=settings
    )


def llama2_training_workload(
    input_tokens: int = 8192,
    device: GPUSpec = A800,
    topology: Topology | None = None,
    layers: int = 8,
    settings: OverlapSettings = DEFAULT_SETTINGS,
) -> EndToEndWorkload:
    """Llama2-7B training under TP=4 (the Fig. 4 profiling workload).

    Pipeline parallelism (PP=2 in the paper) splits layers across stages but
    does not change the per-layer "GEMM + collective" pattern, so only the
    tensor-parallel degree matters here.
    """
    parallelism, topology = _tp_parallelism(topology, default_tp=4, pp=2)
    ops = llm_training_layer(LLAMA2_7B, input_tokens, parallelism, device, topology)
    return EndToEndWorkload(
        name=f"Llama2-7B training (TP={parallelism.tp}, PP={parallelism.pp})", operators=ops, layers=layers, settings=settings
    )


def mixtral_training_workload(
    input_tokens: int = 32768,
    device: GPUSpec = A800,
    topology: Topology | None = None,
    layers: int = 4,
    settings: OverlapSettings = DEFAULT_SETTINGS,
) -> EndToEndWorkload:
    """Mixtral-8x7B training (4 layers) under EP=4, TP=2.

    An explicit topology keeps EP=4 and re-derives TP from the GPU count
    (``n_gpus / 4``), so the expert sharding and the collective span stay one
    realizable configuration.
    """
    if topology is None:
        parallelism = ParallelismConfig(tp=2, ep=4)
        topology = a800_nvlink(parallelism.world_size)
    else:
        if topology.n_gpus % 4 != 0:
            raise ValueError(
                f"mixtral-training needs a GPU count divisible by EP=4, "
                f"got {topology.n_gpus} ({topology.name})"
            )
        parallelism = ParallelismConfig(tp=max(1, topology.n_gpus // 4), ep=4)
    ops = moe_training_layer(MIXTRAL_8X7B, input_tokens, parallelism, device, topology)
    return EndToEndWorkload(
        name=f"Mixtral-8x7B training (EP={parallelism.ep}, TP={parallelism.tp})", operators=ops, layers=layers, settings=settings
    )


def step_video_workload(
    input_tokens: int = 33792,
    device: GPUSpec = A800,
    topology: Topology | None = None,
    layers: int = 8,
    settings: OverlapSettings = DEFAULT_SETTINGS,
) -> EndToEndWorkload:
    """Step-Video-T2V DiT inference under TP=4."""
    parallelism, topology = _tp_parallelism(topology, default_tp=4)
    ops = t2v_inference_layer(STEP_VIDEO_T2V, input_tokens, parallelism, device, topology)
    return EndToEndWorkload(
        name=f"Step-Video-T2V (TP={parallelism.tp})", operators=ops, layers=layers, settings=settings
    )


def paper_workloads(settings: OverlapSettings = DEFAULT_SETTINGS) -> list[EndToEndWorkload]:
    """All four Table 4 applications with their default parameters."""
    return [
        llama3_inference_workload(settings=settings),
        mixtral_training_workload(settings=settings),
        llama3_training_workload(settings=settings),
        step_video_workload(settings=settings),
    ]


#: Every paper workload by slug (the Table 4 four plus the Fig. 4 profiling
#: model).  Each builder takes the input token count as its first positional
#: argument and accepts ``device`` / ``topology`` / ``layers`` / ``settings``
#: keywords, so the registry is what the CLI, the e2e sweep presets and the
#: benchmarks drive.
_WORKLOAD_BUILDERS = {
    "llama3-inference": llama3_inference_workload,
    "llama3-training": llama3_training_workload,
    "llama2-training": llama2_training_workload,
    "mixtral-training": mixtral_training_workload,
    "step-video": step_video_workload,
}


def workload_builders() -> dict:
    """Slug -> builder for all five paper workloads (registry copy)."""
    return dict(_WORKLOAD_BUILDERS)


def build_workload(
    name: str,
    tokens: int | None = None,
    device: GPUSpec = A800,
    topology: Topology | None = None,
    layers: int | None = None,
    settings: OverlapSettings = DEFAULT_SETTINGS,
) -> EndToEndWorkload:
    """Instantiate a registry workload, overriding only the passed knobs.

    An explicit ``topology`` replaces the paper's single-node placement *and*
    re-derives the tensor-parallel degree from its GPU count (EP stays fixed
    for the MoE workload), keeping sharded shapes and collective span
    consistent.
    """
    try:
        builder = _WORKLOAD_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_WORKLOAD_BUILDERS)}"
        ) from None
    kwargs: dict = {"device": device, "topology": topology, "settings": settings}
    if layers is not None:
        kwargs["layers"] = layers
    if tokens is not None:
        return builder(tokens, **kwargs)
    return builder(**kwargs)
