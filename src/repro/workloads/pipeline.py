"""Pipeline-parallel workload descriptions: stage partitions + microbatches.

Pipeline parallelism splits a model's layer stack into contiguous *stages*
(one per pipeline rank) and its input batch into *microbatches* that stream
through the stages.  The scheduling subsystem (:mod:`repro.pp`) prices and
schedules the resulting forward/backward cells; this module provides the
workload side:

* :func:`partition_layers` -- the balanced contiguous stage partition
  (Megatron-style: remainders go to the earliest stages);
* :func:`partition_layers_weighted` -- the cost-weighted contiguous partition:
  a dynamic program over per-layer costs that minimises the bottleneck stage
  (the auto-parallelism planner's partitioner; on a uniform stack it reduces
  to the balanced split);
* :class:`PipelineWorkload` -- one *microbatch's* operator stream through the
  full layer stack, plus the stage partition, the microbatch count and the
  activation-boundary size that the inter-stage P2P transfers move;
* :func:`build_pipeline_workload` -- the registry entry point: split a
  :mod:`repro.workloads.e2e` workload's input tokens into microbatches and
  attach the stage partition.

The microbatch stream is an ordinary :class:`EndToEndWorkload` (the full
stack, at the *microbatch* token count), so the e2e estimator prices it
through the same shared plan store -- ``repro pp --stages 1 --microbatches 1``
degenerates to exactly ``repro e2e``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.comm.topology import Topology
from repro.core.config import DEFAULT_SETTINGS, OverlapSettings
from repro.gpu.device import A800, GPUSpec
from repro.gpu.gemm import DTYPE_BYTES
from repro.workloads.e2e import build_workload, workload_builders
from repro.workloads.llm import LLAMA2_7B, LLAMA3_70B
from repro.workloads.moe import MIXTRAL_8X7B
from repro.workloads.operators import EndToEndWorkload
from repro.workloads.t2v import STEP_VIDEO_T2V

__all__ = [
    "PipelineWorkload",
    "partition_layers",
    "partition_layers_weighted",
    "build_pipeline_workload",
]

#: Hidden size of each registry workload: the per-token width of the
#: activation tensor crossing a stage boundary (what the P2P transfers move).
_HIDDEN_SIZES = {
    "llama3-inference": LLAMA3_70B.hidden_size,
    "llama3-training": LLAMA3_70B.hidden_size,
    "llama2-training": LLAMA2_7B.hidden_size,
    "mixtral-training": MIXTRAL_8X7B.hidden_size,
    "step-video": STEP_VIDEO_T2V.hidden_size,
}


def partition_layers(layers: int, stages: int) -> tuple[int, ...]:
    """Balanced contiguous split of ``layers`` across ``stages``.

    The first ``layers % stages`` stages take one extra layer (the Megatron
    convention: early stages carry embeddings in real runs, so they get the
    remainder).  Every stage receives at least one layer.
    """
    if stages < 1:
        raise ValueError("stages must be >= 1")
    if layers < stages:
        raise ValueError(
            f"cannot split {layers} layers across {stages} stages "
            "(each stage needs at least one layer)"
        )
    base, extra = divmod(layers, stages)
    return tuple(base + (1 if index < extra else 0) for index in range(stages))


def partition_layers_weighted(weights: Sequence[float], stages: int) -> tuple[int, ...]:
    """Cost-weighted contiguous split: minimise the bottleneck stage.

    ``weights[i]`` is the cost of layer ``i`` (any non-negative unit -- the
    planner passes plan-store-priced per-layer latencies).  The returned
    partition assigns contiguous layer runs to stages such that the largest
    per-stage weight sum is minimal; among bottleneck-optimal partitions the
    reconstruction keeps later stages as small as possible, so remainders go
    to the earliest stages and a *uniform* stack reproduces
    :func:`partition_layers` exactly (asserted by the property suite).

    Pipeline step time is dominated by ``microbatches x bottleneck stage
    cost``, so minimising the bottleneck is the right objective for the
    planner's stage axis; the sum-of-squares refinement keeps the remaining
    stages as even as possible (it is what collapses the bottleneck-optimal
    tie set to the balanced split on uniform stacks).
    """
    layers = len(weights)
    if stages < 1:
        raise ValueError("stages must be >= 1")
    if layers < stages:
        raise ValueError(
            f"cannot split {layers} layers across {stages} stages "
            "(each stage needs at least one layer)"
        )
    if any(w < 0 for w in weights):
        raise ValueError("layer weights must be non-negative")
    if stages == 1:
        return (layers,)

    prefix = [0.0]
    for w in weights:
        prefix.append(prefix[-1] + float(w))

    def span(start: int, end: int) -> float:
        return prefix[end] - prefix[start]

    infinity = float("inf")
    # Pass 1 -- dp[s][i]: minimal bottleneck splitting the first i layers into
    # s contiguous stages of >= 1 layer each.
    dp = [[infinity] * (layers + 1) for _ in range(stages + 1)]
    dp[0][0] = 0.0
    for s in range(1, stages + 1):
        for i in range(s, layers + 1):
            dp[s][i] = min(
                max(dp[s - 1][j], span(j, i)) for j in range(s - 1, i)
            )
    bottleneck = dp[stages][layers]

    # Pass 2 -- among bottleneck-optimal partitions, minimise the sum of
    # squared stage costs (the most even split).  Ties prefer the larger
    # break point, i.e. the smaller *later* stage, so remainders land on the
    # earliest stages -- the balanced split's Megatron convention.
    sq = [[infinity] * (layers + 1) for _ in range(stages + 1)]
    choice = [[0] * (layers + 1) for _ in range(stages + 1)]
    sq[0][0] = 0.0
    for s in range(1, stages + 1):
        for i in range(s, layers + 1):
            for j in range(s - 1, i):
                cost = span(j, i)
                if cost > bottleneck or sq[s - 1][j] == infinity:
                    continue
                candidate = sq[s - 1][j] + cost * cost
                if candidate <= sq[s][i]:
                    sq[s][i] = candidate
                    choice[s][i] = j
    counts: list[int] = []
    end = layers
    for s in range(stages, 0, -1):
        start = choice[s][end]
        counts.append(end - start)
        end = start
    return tuple(reversed(counts))


@dataclass(frozen=True)
class PipelineWorkload:
    """One pipeline-parallel workload: a microbatch stream plus its partition.

    ``microbatch`` is the full layer stack priced at the *microbatch* token
    count; ``stage_layers`` assigns those layers to stages
    (``sum(stage_layers) == microbatch.layers``).  ``activation_bytes`` is the
    size of the tensor one microbatch sends across a stage boundary (forward
    activations; the backward gradient is the same size), and ``topology``
    supplies the link model pricing that P2P transfer.  A ``topology`` of
    ``None`` (or zero ``activation_bytes``) models free inter-stage links --
    what the synthetic test workloads use to isolate schedule behaviour.
    """

    name: str
    microbatch: EndToEndWorkload
    stage_layers: tuple[int, ...]
    microbatches: int
    activation_bytes: float = 0.0
    topology: Topology | None = None
    total_tokens: int | None = None
    microbatch_tokens: int | None = None

    def __post_init__(self) -> None:
        if self.microbatches < 1:
            raise ValueError("microbatches must be >= 1")
        if not self.stage_layers or any(count < 1 for count in self.stage_layers):
            raise ValueError("every stage needs at least one layer")
        if sum(self.stage_layers) != self.microbatch.layers:
            raise ValueError(
                f"stage partition {self.stage_layers} does not cover the "
                f"microbatch stream's {self.microbatch.layers} layers"
            )
        if self.activation_bytes < 0:
            raise ValueError("activation_bytes must be non-negative")

    @property
    def num_stages(self) -> int:
        return len(self.stage_layers)

    @property
    def settings(self) -> OverlapSettings:
        return self.microbatch.settings

    def describe(self) -> str:
        tokens = (
            f", {self.microbatch_tokens} tokens/microbatch"
            if self.microbatch_tokens is not None
            else ""
        )
        return (
            f"{self.name}: {self.num_stages} stages {self.stage_layers}, "
            f"{self.microbatches} microbatches{tokens}"
        )


def build_pipeline_workload(
    name: str,
    stages: int,
    microbatches: int,
    tokens: int | None = None,
    device: GPUSpec = A800,
    topology: Topology | None = None,
    layers: int | None = None,
    settings: OverlapSettings = DEFAULT_SETTINGS,
    partition: Sequence[int] | None = None,
) -> PipelineWorkload:
    """Instantiate a registry workload as a pipeline-parallel workload.

    The paper input size (or ``tokens``) is split evenly into ``microbatches``
    -- the microbatch token count is what sizes every GEMM, so the plan store
    tunes the *microbatch* shapes -- and the layer stack is partitioned into
    ``stages`` contiguous groups.  An explicit ``partition`` (e.g. from
    :func:`partition_layers_weighted`, or a replayed plan file) overrides the
    balanced split; it must have ``stages`` entries summing to the layer
    count.  All other knobs match :func:`repro.workloads.e2e.build_workload`.
    """
    if name not in workload_builders():
        raise KeyError(f"unknown workload {name!r}; known: {sorted(workload_builders())}")
    if microbatches < 1:
        raise ValueError("microbatches must be >= 1")
    total_tokens = tokens
    if total_tokens is None:
        # Each builder's first positional default is its paper input size;
        # recover it from the registry signature instead of duplicating it.
        import inspect

        builder = workload_builders()[name]
        total_tokens = next(iter(inspect.signature(builder).parameters.values())).default
    if total_tokens % microbatches != 0:
        raise ValueError(
            f"{total_tokens} input tokens do not split evenly into "
            f"{microbatches} microbatches"
        )
    microbatch_tokens = total_tokens // microbatches
    microbatch = build_workload(
        name,
        tokens=microbatch_tokens,
        device=device,
        topology=topology,
        layers=layers,
        settings=settings,
    )
    if partition is not None:
        stage_layers = tuple(int(count) for count in partition)
        if len(stage_layers) != stages:
            raise ValueError(
                f"explicit partition {stage_layers} has {len(stage_layers)} "
                f"stages, expected {stages}"
            )
    else:
        stage_layers = partition_layers(microbatch.layers, stages)
    # The topology the overlap targets run on also prices the stage-boundary
    # P2P transfer (the PP links of one server / one cluster).
    op_topology = next(
        (op.problem.topology for op in microbatch.operators if op.problem is not None), None
    )
    hidden = _HIDDEN_SIZES[name]
    return PipelineWorkload(
        name=microbatch.name,
        microbatch=microbatch,
        stage_layers=stage_layers,
        microbatches=microbatches,
        activation_bytes=float(microbatch_tokens * hidden * DTYPE_BYTES),
        topology=op_topology,
        total_tokens=total_tokens,
        microbatch_tokens=microbatch_tokens,
    )
