"""Workloads: GEMM shape suites and model-level operator streams.

Two levels of workloads drive the evaluation:

* **operator-level** (:mod:`repro.workloads.shapes`) -- the GEMM size suites
  of Table 3, the typical shapes of Fig. 11, the heatmap grids of Fig. 13 and
  the Ascend shapes of Fig. 16;
* **model-level** (:mod:`repro.workloads.llm`, :mod:`repro.workloads.moe`,
  :mod:`repro.workloads.t2v`, :mod:`repro.workloads.e2e`) -- per-layer
  operator streams of the Table 4 applications (Llama3-70B TP inference and
  training, Mixtral-8x7B EP+TP training, Step-Video-T2V TP inference), used
  for the Fig. 4 latency breakdown and the Fig. 12 end-to-end speedups.
"""

from repro.workloads.parallelism import ParallelismConfig
from repro.workloads.shapes import (
    ShapeSuite,
    ascend_suite,
    fig11_shapes,
    fig13_grid,
    operator_suite,
)
from repro.workloads.llm import (
    LLAMA2_7B,
    LLAMA3_70B,
    ModelConfig,
    llm_inference_layer,
    llm_training_layer,
)
from repro.workloads.moe import MIXTRAL_8X7B, MoEConfig, moe_training_layer, route_tokens
from repro.workloads.t2v import STEP_VIDEO_T2V, DiTConfig, t2v_inference_layer
from repro.workloads.operators import EndToEndWorkload, OperatorInstance
from repro.workloads.e2e import (
    llama2_training_workload,
    llama3_inference_workload,
    llama3_training_workload,
    mixtral_training_workload,
    paper_workloads,
    step_video_workload,
)
from repro.workloads.pipeline import (
    PipelineWorkload,
    build_pipeline_workload,
    partition_layers,
)

__all__ = [
    "ParallelismConfig",
    "ShapeSuite",
    "operator_suite",
    "fig11_shapes",
    "fig13_grid",
    "ascend_suite",
    "ModelConfig",
    "LLAMA3_70B",
    "LLAMA2_7B",
    "llm_inference_layer",
    "llm_training_layer",
    "MoEConfig",
    "MIXTRAL_8X7B",
    "moe_training_layer",
    "route_tokens",
    "STEP_VIDEO_T2V",
    "DiTConfig",
    "t2v_inference_layer",
    "EndToEndWorkload",
    "OperatorInstance",
    "llama3_inference_workload",
    "llama3_training_workload",
    "llama2_training_workload",
    "mixtral_training_workload",
    "step_video_workload",
    "paper_workloads",
    "PipelineWorkload",
    "build_pipeline_workload",
    "partition_layers",
]
