"""GEMM shape suites used by the operator-level evaluation.

Table 3 of the paper specifies, per primitive and per GPU type, the range of
output sizes (``M x N``, in multiples of 1024^2 elements) and accumulation
sizes (``K``, in multiples of 1024) covered by the evaluation.  The suites
here generate a deterministic grid over those ranges.  The module also
provides the typical shapes of Fig. 11, the heatmap grids of Fig. 13 and the
Ascend NPU shapes of Fig. 16.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.primitives import CollectiveKind
from repro.gpu.gemm import GemmShape

#: Output width used when expanding an ``M x N`` product into a concrete shape.
DEFAULT_N = 8192


@dataclass(frozen=True)
class ShapeSuite:
    """A named collection of GEMM shapes."""

    name: str
    shapes: tuple[GemmShape, ...]

    def __len__(self) -> int:
        return len(self.shapes)

    def __iter__(self):
        return iter(self.shapes)


#: Table 3 ranges: (mn_min, mn_max) in units of 1024^2 output elements and
#: (k_min, k_max) in units of 1024, per (primitive, device family).
TABLE3_RANGES: dict[tuple[CollectiveKind, str], tuple[tuple[int, int], tuple[int, int]]] = {
    (CollectiveKind.ALL_REDUCE, "a800"): ((64, 256), (2, 8)),
    (CollectiveKind.ALL_REDUCE, "rtx4090"): ((16, 64), (8, 16)),
    (CollectiveKind.REDUCE_SCATTER, "a800"): ((64, 256), (2, 8)),
    (CollectiveKind.REDUCE_SCATTER, "rtx4090"): ((16, 64), (8, 16)),
    (CollectiveKind.ALL_TO_ALL, "a800"): ((16, 400), (4, 8)),
    (CollectiveKind.ALL_TO_ALL, "rtx4090"): ((4, 68), (8, 16)),
}


def _mn_to_shape(mn_mega: int, k_kilo: int, n: int = DEFAULT_N) -> GemmShape:
    """Expand an output size of ``mn_mega * 1024^2`` elements into (M, N, K)."""
    total = mn_mega * 1024 * 1024
    m = max(128, total // n)
    return GemmShape(m=m, n=n, k=k_kilo * 1024)


def operator_suite(
    collective: CollectiveKind,
    device_family: str,
    mn_points: int = 5,
    k_points: int = 4,
) -> ShapeSuite:
    """Deterministic grid over the Table 3 range for one primitive/GPU pair."""
    key = (collective, device_family.lower())
    if key not in TABLE3_RANGES:
        raise KeyError(
            f"no Table 3 range for {collective.short_name} on {device_family!r}; "
            f"known families: a800, rtx4090"
        )
    (mn_lo, mn_hi), (k_lo, k_hi) = TABLE3_RANGES[key]
    mn_values = _linspace_int(mn_lo, mn_hi, mn_points)
    k_values = _linspace_int(k_lo, k_hi, k_points)
    shapes = tuple(
        _mn_to_shape(mn, k) for mn in mn_values for k in k_values
    )
    return ShapeSuite(
        name=f"table3-{collective.short_name.lower()}-{device_family.lower()}", shapes=shapes
    )


def fig11_shapes() -> ShapeSuite:
    """The typical GEMM+RS shapes of Fig. 11 (A800): M x 8192 with three K."""
    ms = (16384, 32768, 49152)
    ks = (2048, 4096, 8192)
    shapes = tuple(GemmShape(m=m, n=DEFAULT_N, k=k) for k in ks for m in ms)
    return ShapeSuite(name="fig11-typical-rs-a800", shapes=shapes)


def fig13_grid(device_family: str) -> tuple[list[int], list[int]]:
    """Heatmap axes of Fig. 13: output sizes (x1024^2) and K values (x1024).

    RTX 4090: M x N from 16 to 64 Mi elements, K from 4k to 16k.
    A800:     M x N from 64 to 256 Mi elements, K from 2k to 8k.
    """
    family = device_family.lower()
    if family == "rtx4090":
        return [16, 24, 32, 40, 48, 56, 64], [4, 6, 8, 10, 12, 14, 16]
    if family == "a800":
        return [64, 96, 128, 160, 192, 224, 256], [2, 3, 4, 5, 6, 7, 8]
    raise KeyError(f"unknown device family {device_family!r}")


def fig13_shape(mn_mega: int, k_kilo: int) -> GemmShape:
    """Concrete GEMM shape of one heatmap cell."""
    return _mn_to_shape(mn_mega, k_kilo)


def ascend_suite() -> ShapeSuite:
    """Typical LLM GEMM shapes of the Ascend 910B evaluation (Fig. 16)."""
    shapes = (
        GemmShape(2048, 5120, 2560),
        GemmShape(4096, 2048, 8192),
        GemmShape(4096, 4096, 2048),
        GemmShape(5120, 6912, 4096),
        GemmShape(2048, 8192, 12288),
        GemmShape(4096, 5120, 2560),
        GemmShape(4096, 8192, 4096),
        GemmShape(2048, 4096, 5120),
    )
    return ShapeSuite(name="fig16-ascend-llm", shapes=shapes)


def _linspace_int(lo: int, hi: int, points: int) -> list[int]:
    """Evenly spaced integers from ``lo`` to ``hi`` inclusive (deduplicated)."""
    if points < 2 or lo == hi:
        return [lo] if lo == hi else [lo, hi][:points]
    step = (hi - lo) / (points - 1)
    values = []
    for i in range(points):
        value = int(round(lo + i * step))
        if not values or value != values[-1]:
            values.append(value)
    return values
