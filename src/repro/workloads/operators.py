"""Operator streams and end-to-end workload aggregation.

A model forward (or forward+backward) pass is flattened into a list of
:class:`OperatorInstance`:

* operators with a ``problem`` are "GEMM + collective" pairs -- the overlap
  targets; their latency depends on the execution method (non-overlap,
  FlashOverlap, or one of the baselines);
* operators with only ``other_latency`` are everything else (attention,
  column-parallel GEMMs, norms, optimizer steps) and cost the same under every
  method.

:class:`EndToEndWorkload` aggregates a stream into the Fig. 4 latency-share
breakdown and the Fig. 12 end-to-end speedups.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.baselines import BaselineMethod, NonOverlapBaseline
from repro.core.config import DEFAULT_SETTINGS, OverlapProblem, OverlapSettings
from repro.core.overlap import FlashOverlapOperator


@dataclass(frozen=True)
class OperatorInstance:
    """One operator occurrence in a model's execution stream."""

    name: str
    problem: OverlapProblem | None = None
    other_latency: float = 0.0
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.problem is None and self.other_latency <= 0:
            raise ValueError(f"operator {self.name!r} has neither a problem nor a latency")
        if self.other_latency < 0:
            raise ValueError("other_latency must be non-negative")

    @property
    def is_overlap_target(self) -> bool:
        return self.problem is not None

    def pattern(self) -> str:
        """Breakdown category: ``GEMM+AR`` / ``GEMM+RS`` / ``GEMM+A2A`` / ``others``."""
        if self.problem is None:
            return "others"
        return f"GEMM+{self.problem.collective.short_name}"


@dataclass
class EndToEndWorkload:
    """A named stream of operators (typically one layer, repeated)."""

    name: str
    operators: list[OperatorInstance]
    layers: int = 1
    settings: OverlapSettings = field(default_factory=lambda: DEFAULT_SETTINGS)

    def __post_init__(self) -> None:
        if self.layers < 1:
            raise ValueError("layers must be >= 1")
        self._latency_cache: dict[tuple[str, int], float] = {}

    # -- per-operator latencies ---------------------------------------------------

    def _overlap_latency(self, problem: OverlapProblem) -> float:
        operator = FlashOverlapOperator(problem, self.settings)
        return operator.simulate().latency

    def _method_latency(self, op: OperatorInstance, method: BaselineMethod | str) -> float:
        if op.problem is None:
            return op.other_latency
        key = (f"{op.name}|{method if isinstance(method, str) else method.name}", id(op))
        if key in self._latency_cache:
            return self._latency_cache[key]
        if isinstance(method, str):
            if method == "flashoverlap":
                latency = self._overlap_latency(op.problem)
            elif method == "non-overlap":
                latency = NonOverlapBaseline(self.settings).latency(op.problem)
            else:
                raise ValueError(f"unknown method {method!r}")
        else:
            result = method.evaluate(op.problem)
            latency = result.latency if result.supported else float("inf")
        self._latency_cache[key] = latency
        return latency

    # -- aggregation ----------------------------------------------------------------

    def total_latency(self, method: BaselineMethod | str = "non-overlap") -> float:
        """End-to-end latency of the stream under one execution method."""
        per_layer = sum(
            self._method_latency(op, method) * op.count for op in self.operators
        )
        return per_layer * self.layers

    def speedup(self, method: BaselineMethod | str = "flashoverlap") -> float:
        """End-to-end speedup of ``method`` over the non-overlap execution."""
        return self.total_latency("non-overlap") / self.total_latency(method)

    def breakdown(self, method: BaselineMethod | str = "non-overlap") -> dict[str, float]:
        """Latency share per pattern (Fig. 4): fractions summing to 1."""
        totals: dict[str, float] = {}
        for op in self.operators:
            pattern = op.pattern()
            totals[pattern] = totals.get(pattern, 0.0) + self._method_latency(op, method) * op.count
        grand = sum(totals.values())
        if grand <= 0:
            return {k: 0.0 for k in totals}
        return {k: v / grand for k, v in sorted(totals.items())}

    def operator_speedups(self, method: BaselineMethod | str = "flashoverlap") -> dict[str, float]:
        """Per overlap-target speedup (the "size 1"/"size 2" bars of Fig. 12)."""
        speedups: dict[str, float] = {}
        for op in self.operators:
            if op.problem is None:
                continue
            non_overlap = self._method_latency(op, "non-overlap")
            this = self._method_latency(op, method)
            speedups[op.name] = non_overlap / this
        return speedups

    def overlap_target_fraction(self) -> float:
        """Fraction of end-to-end time spent in "GEMM + collective" pairs."""
        breakdown = self.breakdown()
        return sum(v for k, v in breakdown.items() if k != "others")
