"""Text-to-video (DiT) workloads under tensor parallelism.

Step-Video-T2V-style diffusion transformers process very long token sequences
(tens of thousands of spatio-temporal patches), so the tensor-parallel
projections that feed an AllReduce are large and their communication share is
substantial -- the paper's Fig. 4 shows the biggest "GEMM + AR" share for this
workload, and Fig. 12 its biggest end-to-end gain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.primitives import CollectiveKind
from repro.comm.topology import Topology
from repro.core.config import OverlapProblem
from repro.gpu.device import GPUSpec
from repro.gpu.gemm import GemmShape
from repro.workloads.llm import (
    ModelConfig,
    _attention_latency,
    _elementwise_latency,
    _gemm_latency,
)
from repro.workloads.operators import OperatorInstance
from repro.workloads.parallelism import ParallelismConfig


@dataclass(frozen=True)
class DiTConfig:
    """Diffusion-transformer configuration."""

    name: str
    hidden_size: int
    intermediate_size: int
    num_layers: int
    num_heads: int
    cross_attention: bool = True

    @property
    def dense(self) -> ModelConfig:
        return ModelConfig(
            name=self.name,
            hidden_size=self.hidden_size,
            intermediate_size=self.intermediate_size,
            num_layers=self.num_layers,
            num_heads=self.num_heads,
            num_kv_heads=self.num_heads,
        )


STEP_VIDEO_T2V = DiTConfig(
    name="Step-Video-T2V",
    hidden_size=6144,
    intermediate_size=24576,
    num_layers=48,
    num_heads=48,
)


def t2v_inference_layer(
    config: DiTConfig,
    tokens: int,
    parallelism: ParallelismConfig,
    device: GPUSpec,
    topology: Topology,
) -> list[OperatorInstance]:
    """One DiT block under TP inference.

    Self-attention and cross-attention output projections plus the MLP down
    projection are row-parallel and followed by an AllReduce (the overlap
    targets); everything else is "others".
    """
    tp = parallelism.tp
    hidden = config.hidden_size
    inter = config.intermediate_size
    dense = config.dense
    ops: list[OperatorInstance] = []

    ops.append(
        OperatorInstance(
            name="self-attn-qkv",
            other_latency=_gemm_latency(GemmShape(tokens, 3 * hidden // tp, hidden), device),
        )
    )
    ops.append(
        OperatorInstance(
            name="self-attention-core",
            other_latency=_attention_latency(tokens, dense, parallelism, device, causal=False),
        )
    )
    ops.append(
        OperatorInstance(
            name="self-attn-out+AR",
            problem=OverlapProblem(
                shape=GemmShape(tokens, hidden, hidden // tp),
                device=device,
                topology=topology,
                collective=CollectiveKind.ALL_REDUCE,
            ),
        )
    )
    if config.cross_attention:
        ops.append(
            OperatorInstance(
                name="cross-attn(q,kv,core)",
                other_latency=(
                    _gemm_latency(GemmShape(tokens, hidden // tp, hidden), device)
                    + _elementwise_latency(tokens * hidden, device, passes=2)
                ),
            )
        )
        ops.append(
            OperatorInstance(
                name="cross-attn-out+AR",
                problem=OverlapProblem(
                    shape=GemmShape(tokens, hidden, hidden // tp),
                    device=device,
                    topology=topology,
                    collective=CollectiveKind.ALL_REDUCE,
                ),
            )
        )
    ops.append(
        OperatorInstance(
            name="mlp-up",
            other_latency=_gemm_latency(GemmShape(tokens, inter // tp, hidden), device),
        )
    )
    ops.append(
        OperatorInstance(
            name="mlp-down+AR",
            problem=OverlapProblem(
                shape=GemmShape(tokens, hidden, inter // tp),
                device=device,
                topology=topology,
                collective=CollectiveKind.ALL_REDUCE,
            ),
        )
    )
    ops.append(
        OperatorInstance(
            name="adaln+norms+residual",
            other_latency=_elementwise_latency(tokens * hidden, device, passes=8),
        )
    )
    return ops
