"""Mixture-of-Experts workloads under expert parallelism (GEMM + All-to-All).

MoE layers route each token to ``top_k`` experts; with expert parallelism the
experts live on different GPUs, so the expert outputs must be sent back to the
token's home GPU with an All-to-All -- the GEMM+A2A pattern of Sec. 2.3.3.
Routing is dynamic and imbalanced, which both stretches the collective and
skews the per-GPU GEMM sizes; :func:`route_tokens` generates a reproducible
imbalanced routing and the layer builder feeds the measured imbalance factor
into the overlap problems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.primitives import CollectiveKind
from repro.comm.topology import Topology
from repro.core.config import OverlapProblem
from repro.gpu.device import GPUSpec
from repro.gpu.gemm import GemmKernelModel, GemmShape
from repro.workloads.llm import ModelConfig, _attention_latency, _elementwise_latency, _gemm_latency
from repro.workloads.operators import OperatorInstance
from repro.workloads.parallelism import ParallelismConfig


@dataclass(frozen=True)
class MoEConfig:
    """Mixture-of-Experts transformer configuration."""

    name: str
    hidden_size: int
    expert_intermediate_size: int
    num_experts: int
    top_k: int
    num_layers: int
    num_heads: int
    num_kv_heads: int

    @property
    def dense(self) -> ModelConfig:
        """The dense (attention) part as a :class:`ModelConfig`."""
        return ModelConfig(
            name=self.name,
            hidden_size=self.hidden_size,
            intermediate_size=self.expert_intermediate_size,
            num_layers=self.num_layers,
            num_heads=self.num_heads,
            num_kv_heads=self.num_kv_heads,
        )


MIXTRAL_8X7B = MoEConfig(
    name="Mixtral-8x7B",
    hidden_size=4096,
    expert_intermediate_size=14336,
    num_experts=8,
    top_k=2,
    num_layers=32,
    num_heads=32,
    num_kv_heads=8,
)


@dataclass(frozen=True)
class RoutingReport:
    """Token counts per expert and the resulting per-GPU imbalance."""

    tokens_per_expert: np.ndarray
    tokens_per_gpu: np.ndarray

    @property
    def imbalance_factor(self) -> float:
        """Most-loaded GPU's token count relative to the mean."""
        mean = float(np.mean(self.tokens_per_gpu))
        if mean <= 0:
            return 1.0
        return float(np.max(self.tokens_per_gpu)) / mean


def route_tokens(
    num_tokens: int,
    config: MoEConfig,
    ep: int,
    concentration: float = 2.0,
    seed: int = 0,
) -> RoutingReport:
    """Sample an imbalanced top-k routing.

    Expert popularity is drawn from a Dirichlet distribution; smaller
    ``concentration`` means more skew.  Experts are assigned round-robin to the
    ``ep`` GPUs (Megatron-style) and the per-GPU load is the sum of its
    experts' token counts.
    """
    if ep < 1 or config.num_experts % ep != 0:
        raise ValueError(f"{config.num_experts} experts cannot be split across ep={ep}")
    rng = np.random.default_rng(seed)
    popularity = rng.dirichlet([concentration] * config.num_experts)
    assignments = num_tokens * config.top_k * popularity
    tokens_per_expert = np.floor(assignments).astype(np.int64)
    # Distribute the rounding remainder to the most popular experts.
    deficit = num_tokens * config.top_k - int(tokens_per_expert.sum())
    order = np.argsort(-popularity)
    for i in range(deficit):
        tokens_per_expert[order[i % config.num_experts]] += 1
    experts_per_gpu = config.num_experts // ep
    tokens_per_gpu = tokens_per_expert.reshape(ep, experts_per_gpu).sum(axis=1)
    return RoutingReport(tokens_per_expert=tokens_per_expert, tokens_per_gpu=tokens_per_gpu)


def moe_training_layer(
    config: MoEConfig,
    tokens: int,
    parallelism: ParallelismConfig,
    device: GPUSpec,
    topology: Topology,
    routing_seed: int = 0,
) -> list[OperatorInstance]:
    """One MoE transformer layer (forward + backward) under EP (+ optional TP).

    The expert down-projection GEMM followed by the All-to-All combine is the
    overlap target; the dispatch All-to-All, the expert up-projection and the
    attention block are "others".
    """
    ep = max(parallelism.ep, 1)
    tp = max(parallelism.tp, 1)
    routing = route_tokens(tokens, config, ep, seed=routing_seed)
    tokens_per_gpu = int(np.ceil(tokens * config.top_k / ep))
    hidden = config.hidden_size
    inter = config.expert_intermediate_size // tp

    ops: list[OperatorInstance] = []
    dense = config.dense

    # Attention block (TP if configured, otherwise replicated).
    attention_parallelism = ParallelismConfig(tp=tp)
    ops.append(
        OperatorInstance(
            name="qkv+attention+out-proj",
            other_latency=(
                _gemm_latency(GemmShape(tokens, (hidden + 2 * dense.kv_hidden) // tp, hidden), device)
                + _attention_latency(tokens, dense, attention_parallelism, device)
                + _gemm_latency(GemmShape(tokens, hidden, hidden // tp), device)
            ),
        )
    )
    if tp > 1:
        ops.append(
            OperatorInstance(
                name="attn-out-proj+AR",
                problem=OverlapProblem(
                    shape=GemmShape(tokens, hidden, hidden // tp),
                    device=device,
                    topology=topology,
                    collective=CollectiveKind.ALL_REDUCE,
                ),
            )
        )

    # Router and dispatch All-to-All (not data-dependent on a single GEMM).
    ops.append(
        OperatorInstance(
            name="router+dispatch-a2a",
            other_latency=_elementwise_latency(tokens * hidden, device, passes=3),
        )
    )
    # Expert up/gate projection (no collective follows it).
    ops.append(
        OperatorInstance(
            name="expert-up-gate",
            other_latency=_gemm_latency(GemmShape(tokens_per_gpu, 2 * inter, hidden), device),
        )
    )
    # Expert down projection followed by the All-to-All combine: GEMM+A2A.
    ops.append(
        OperatorInstance(
            name="expert-down+A2A",
            problem=OverlapProblem(
                shape=GemmShape(tokens_per_gpu, hidden, inter),
                device=device,
                topology=topology,
                collective=CollectiveKind.ALL_TO_ALL,
                imbalance=routing.imbalance_factor,
            ),
        )
    )
    # Backward pass: data/weight gradients of the experts plus the backward
    # All-to-Alls; the wgrad GEMM feeding the gradient A2A is the second
    # overlap target.
    ops.append(
        OperatorInstance(
            name="bwd-attention+dgrads",
            other_latency=(
                2.0 * _attention_latency(tokens, dense, attention_parallelism, device)
                + _gemm_latency(GemmShape(tokens_per_gpu, 2 * inter, hidden), device)
                + _gemm_latency(GemmShape(tokens, hidden, hidden // tp), device)
            ),
        )
    )
    ops.append(
        OperatorInstance(
            name="bwd-expert-dgrad+A2A",
            problem=OverlapProblem(
                shape=GemmShape(tokens_per_gpu, inter, hidden),
                device=device,
                topology=topology,
                collective=CollectiveKind.ALL_TO_ALL,
                imbalance=routing.imbalance_factor,
            ),
        )
    )
    ops.append(
        OperatorInstance(
            name="bwd-others(wgrad, optimizer, norms)",
            other_latency=(
                _gemm_latency(GemmShape(hidden, 2 * inter, tokens_per_gpu), device)
                + _elementwise_latency(tokens * hidden, device, passes=6)
            ),
        )
    )
    return ops
