"""Plain-text / markdown rendering of result tables and heatmaps.

The benchmarks print the same rows and series the paper reports; these helpers
keep that formatting in one place so every bench produces consistent output.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path

import numpy as np


class ReportMixin:
    """The small protocol every ``repro.api`` report object shares.

    A report class provides ``to_dict()`` (JSON-stable: identical runs
    produce identical payloads) and ``summary_table()`` (the human-readable
    headline table); the mixin derives the serialisation helpers from
    ``to_dict()`` so the CLI's ``--json`` output and the facade's
    ``to_json()`` are the same bytes by construction.

    A profiled run (``--profile`` / ``api.*(profile=True)``) attaches its
    :class:`~repro.obs.session.ProfileSnapshot` via
    :meth:`attach_observability`; ``to_dict()`` implementations close with
    ``self._with_observability(payload)`` so the snapshot lands under an
    ``observability`` key.  The attachment is always explicit -- reports
    never read ambient observability state, so un-profiled payloads stay
    byte-identical whether or not a session happens to be active.
    """

    #: The explicitly attached profile snapshot; ``None`` on plain runs.
    profile = None

    def to_dict(self) -> dict:  # pragma: no cover - interface declaration
        raise NotImplementedError

    def summary_table(self) -> str:  # pragma: no cover - interface declaration
        raise NotImplementedError

    def attach_observability(self, snapshot) -> None:
        """Attach a profile snapshot; its dict rides along in ``to_dict()``."""
        self.profile = snapshot

    def _with_observability(self, payload: dict) -> dict:
        if self.profile is not None:
            payload["observability"] = self.profile.to_dict()
        return payload

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save_json(self, path: str | Path) -> Path:
        from repro.atomic import atomic_write_text

        return atomic_write_text(path, self.to_json())


def _format_cell(value, precision: int = 3) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], precision: int = 3, title: str | None = None
) -> str:
    """Fixed-width text table."""
    str_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[col])), *(len(row[col]) for row in str_rows)) if str_rows else len(str(headers[col]))
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Sequence[Sequence], precision: int = 3) -> str:
    """GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_format_cell(cell, precision) for cell in row) + " |")
    return "\n".join(lines)


def format_heatmap(
    grid: np.ndarray,
    row_labels: Sequence,
    col_labels: Sequence,
    precision: int = 2,
    corner: str = "",
    title: str | None = None,
) -> str:
    """Render a 2-D array with row/column labels (Fig. 13-style heatmap)."""
    grid = np.asarray(grid, dtype=np.float64)
    if grid.shape != (len(row_labels), len(col_labels)):
        raise ValueError(
            f"grid shape {grid.shape} does not match labels "
            f"({len(row_labels)}, {len(col_labels)})"
        )
    headers = [corner] + [str(c) for c in col_labels]
    rows = []
    for label, row in zip(row_labels, grid):
        rows.append([str(label)] + [f"{v:.{precision}f}" for v in row])
    return format_table(headers, rows, title=title)
