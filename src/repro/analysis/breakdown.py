"""Latency-share breakdowns of end-to-end workloads (paper Fig. 4)."""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.reporting import format_table
from repro.workloads.operators import EndToEndWorkload

#: Column order of the Fig. 4 breakdown.
PATTERNS = ("GEMM+AR", "GEMM+RS", "GEMM+A2A", "others")


def _shares_table(named_shares: Iterable[tuple[str, dict]]) -> str:
    """Render (name, pattern -> fraction) pairs as the Fig. 4 share table."""
    rows = [
        [name] + [f"{shares.get(pattern, 0.0) * 100:.1f}%" for pattern in PATTERNS]
        for name, shares in named_shares
    ]
    return format_table(["workload", *PATTERNS], rows, title="GEMM + collective latency share")


def latency_breakdown_table(workloads: Iterable[EndToEndWorkload]) -> str:
    """Render the per-workload latency shares as a text table."""
    return _shares_table((workload.name, workload.breakdown()) for workload in workloads)


def breakdown_fractions(workload: EndToEndWorkload) -> dict[str, float]:
    """The Fig. 4 fractions of one workload, with every pattern present."""
    shares = workload.breakdown()
    return {pattern: shares.get(pattern, 0.0) for pattern in PATTERNS}


def estimate_breakdown_table(estimates: Iterable) -> str:
    """Render the Fig. 4 latency shares of e2e estimates as a text table.

    Accepts :class:`~repro.e2e.estimator.WorkloadEstimate` objects (anything
    with ``name`` and ``pattern_shares()``); shares come from the non-overlap
    pricing, matching the paper's profiling figure.
    """
    return _shares_table((estimate.name, estimate.pattern_shares()) for estimate in estimates)
