"""Latency-share breakdowns of end-to-end workloads (paper Fig. 4)."""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.reporting import format_table
from repro.workloads.operators import EndToEndWorkload

#: Column order of the Fig. 4 breakdown.
PATTERNS = ("GEMM+AR", "GEMM+RS", "GEMM+A2A", "others")


def latency_breakdown_table(workloads: Iterable[EndToEndWorkload]) -> str:
    """Render the per-workload latency shares as a text table."""
    rows = []
    for workload in workloads:
        shares = workload.breakdown()
        rows.append(
            [workload.name]
            + [f"{shares.get(pattern, 0.0) * 100:.1f}%" for pattern in PATTERNS]
        )
    return format_table(["workload", *PATTERNS], rows, title="GEMM + collective latency share")


def breakdown_fractions(workload: EndToEndWorkload) -> dict[str, float]:
    """The Fig. 4 fractions of one workload, with every pattern present."""
    shares = workload.breakdown()
    return {pattern: shares.get(pattern, 0.0) for pattern in PATTERNS}
