"""Analysis helpers: speedup surveys, heatmaps, breakdowns and text reports."""

from repro.analysis.reporting import format_heatmap, format_markdown_table, format_table
from repro.analysis.speedup import (
    HeatmapResult,
    OperatorComparison,
    compare_methods,
    speedup_heatmap,
    summarize_speedups,
)
from repro.analysis.breakdown import latency_breakdown_table

__all__ = [
    "format_table",
    "format_markdown_table",
    "format_heatmap",
    "OperatorComparison",
    "compare_methods",
    "summarize_speedups",
    "HeatmapResult",
    "speedup_heatmap",
    "latency_breakdown_table",
]
