"""Operator-level speedup surveys: method comparisons and heatmaps.

These are the data-collection routines behind Fig. 10 (average speedups per
primitive / GPU count), Fig. 11 (typical shapes), Fig. 13 (speedup heatmap and
ratio-of-theoretical heatmap) and Fig. 16 (Ascend NPUs).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.baselines import BaselineMethod, NonOverlapBaseline, default_baselines
from repro.core.config import DEFAULT_SETTINGS, OverlapProblem, OverlapSettings
from repro.core.overlap import FlashOverlapOperator
from repro.gpu.gemm import GemmShape


@dataclass
class OperatorComparison:
    """Speedups of every method on one problem, normalised to non-overlap."""

    problem: OverlapProblem
    speedups: dict[str, float] = field(default_factory=dict)

    def best_method(self) -> str:
        return max(self.speedups, key=lambda k: self.speedups[k])


def compare_methods(
    problem: OverlapProblem,
    methods: Sequence[BaselineMethod] | None = None,
    settings: OverlapSettings = DEFAULT_SETTINGS,
    include_flashoverlap: bool = True,
) -> OperatorComparison:
    """Evaluate FlashOverlap and the baselines on one problem."""
    methods = list(methods) if methods is not None else default_baselines(settings)
    non_overlap = NonOverlapBaseline(settings).latency(problem)
    comparison = OperatorComparison(problem=problem)
    for method in methods:
        result = method.evaluate(problem)
        if result.supported:
            comparison.speedups[method.name] = non_overlap / result.latency
    if include_flashoverlap:
        overlap = FlashOverlapOperator(problem, settings).simulate().latency
        comparison.speedups["flashoverlap"] = non_overlap / overlap
    return comparison


def summarize_speedups(comparisons: Iterable[OperatorComparison]) -> dict[str, dict[str, float]]:
    """Aggregate per-method mean / min / max speedups (one Fig. 10 bar)."""
    collected: dict[str, list[float]] = {}
    for comparison in comparisons:
        for method, speedup in comparison.speedups.items():
            collected.setdefault(method, []).append(speedup)
    summary = {}
    for method, values in collected.items():
        arr = np.asarray(values)
        summary[method] = {
            "mean": float(arr.mean()),
            "min": float(arr.min()),
            "max": float(arr.max()),
            "count": int(arr.size),
        }
    return summary


@dataclass
class HeatmapResult:
    """Speedup and ratio-of-theoretical grids over (M x N, K) axes (Fig. 13)."""

    mn_values: list[int]
    k_values: list[int]
    speedup: np.ndarray
    theoretical_ratio: np.ndarray

    def peak_speedup(self) -> float:
        return float(np.max(self.speedup))

    def mean_theoretical_ratio(self) -> float:
        return float(np.mean(self.theoretical_ratio))


def speedup_heatmap(
    mn_values: Sequence[int],
    k_values: Sequence[int],
    problem_builder: Callable[[int, int], OverlapProblem],
    settings: OverlapSettings = DEFAULT_SETTINGS,
) -> HeatmapResult:
    """Sweep a grid of shapes and collect speedup / ratio heatmaps.

    ``problem_builder(mn_mega, k_kilo)`` maps one grid cell to an
    :class:`OverlapProblem`; rows of the result are K values, columns are
    output sizes (as in Fig. 13).
    """
    speedup = np.zeros((len(k_values), len(mn_values)))
    ratio = np.zeros_like(speedup)
    for i, k in enumerate(k_values):
        for j, mn in enumerate(mn_values):
            problem = problem_builder(mn, k)
            operator = FlashOverlapOperator(problem, settings)
            report = operator.report()
            speedup[i, j] = report.speedup
            ratio[i, j] = min(1.0, report.ratio_of_theoretical)
    return HeatmapResult(
        mn_values=list(mn_values), k_values=list(k_values), speedup=speedup, theoretical_ratio=ratio
    )


def shape_survey(
    shapes: Iterable[GemmShape],
    problem_builder: Callable[[GemmShape], OverlapProblem],
    settings: OverlapSettings = DEFAULT_SETTINGS,
    methods: Sequence[BaselineMethod] | None = None,
) -> list[OperatorComparison]:
    """Run the method comparison over a suite of shapes (Fig. 10 / 11 / 16)."""
    return [
        compare_methods(problem_builder(shape), methods=methods, settings=settings)
        for shape in shapes
    ]
