"""The cluster description shared by every subcommand and the planner.

Historically each CLI subcommand grew its own placement flags -- ``serve``
took ``--gpus`` while ``e2e``/``pp`` took ``--nodes``/``--gpus-per-node`` --
and each resolved them into a :class:`~repro.comm.topology.Topology` with its
own ad-hoc logic.  :class:`ClusterSpec` is the one value all of them (and the
:mod:`repro.api` facade) now consume:

* ``device`` names the accelerator preset (``repro.gpu.device``);
* ``topology`` names a single-server interconnect preset, scaled to ``gpus``
  GPUs; leaving both unset means "each workload's paper-default placement"
  (what ``repro e2e`` / ``repro pp`` do without flags);
* ``nodes``/``gpus_per_node`` instead place the collective on a multi-node
  A800 cluster (NVLink inside a node, InfiniBand across nodes) and override
  ``topology``/``gpus``.

The auto-parallelism planner additionally asks a spec for the topology of a
*tensor-parallel group*: :meth:`topology_for_tp` spans the group inside one
server while it fits and falls over to the multi-node fabric when the degree
exceeds ``gpus_per_node``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.topology import Topology, known_topologies, multinode_a800
from repro.gpu.device import GPUSpec, device_by_name, known_devices

__all__ = ["ClusterSpec"]

#: Single-server fallback preset when only a GPU count is given.
_DEFAULT_TOPOLOGY = "a800-nvlink"


@dataclass(frozen=True)
class ClusterSpec:
    """One cluster configuration: accelerator + interconnect + GPU placement."""

    device: str = "a800"
    topology: str | None = None
    gpus: int | None = None
    nodes: int | None = None
    gpus_per_node: int = 8

    def __post_init__(self) -> None:
        if self.device not in known_devices():
            raise ValueError(f"unknown device {self.device!r}; known: {sorted(known_devices())}")
        if self.topology is not None and self.topology not in known_topologies():
            raise ValueError(
                f"unknown topology {self.topology!r}; known: {sorted(known_topologies())}"
            )
        if self.gpus is not None and self.gpus < 2:
            raise ValueError("gpus must be >= 2 (a collective needs at least two ranks)")
        if self.nodes is not None and self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.gpus_per_node < 1:
            raise ValueError("gpus_per_node must be >= 1")

    # -- derived values ----------------------------------------------------------

    @property
    def device_spec(self) -> GPUSpec:
        return device_by_name(self.device)

    @property
    def total_gpus(self) -> int:
        """GPUs available to the planner (nodes x gpus_per_node, or ``gpus``)."""
        if self.nodes:
            return self.nodes * self.gpus_per_node
        if self.gpus is not None:
            return self.gpus
        return known_topologies()[self.topology or _DEFAULT_TOPOLOGY].n_gpus

    def resolve(self) -> Topology | None:
        """The topology this spec describes.

        Multi-node placements win over single-server presets; a spec with
        neither ``topology``/``gpus`` nor ``nodes`` resolves to ``None``,
        which consumers read as "use the workload's paper-default placement".
        """
        if self.nodes and self.nodes > 1:
            return multinode_a800(n_nodes=self.nodes, gpus_per_node=self.gpus_per_node)
        if self.nodes == 1:
            preset = known_topologies()[self.topology or _DEFAULT_TOPOLOGY]
            return preset.with_n_gpus(self.gpus_per_node)
        if self.topology is None and self.gpus is None:
            return None
        preset = known_topologies()[self.topology or _DEFAULT_TOPOLOGY]
        return preset.with_n_gpus(self.gpus) if self.gpus else preset

    def topology_for_tp(self, tp: int) -> Topology:
        """The interconnect one tensor-parallel group of degree ``tp`` runs on.

        While the group fits inside a server it spans the single-node preset
        scaled to ``tp`` GPUs; a degree beyond ``gpus_per_node`` must cross
        nodes, so the group lands on the multi-node A800 fabric.  The planner
        prices every TP degree through this, so "TP=16 needs InfiniBand" is
        part of the search's cost model rather than an afterthought.
        """
        if tp < 2:
            raise ValueError("a tensor-parallel group needs at least 2 GPUs")
        per_node = self.gpus_per_node if self.nodes else min(self.gpus_per_node, self.total_gpus)
        if tp > per_node:
            if tp % per_node != 0:
                raise ValueError(
                    f"TP={tp} does not split evenly across {per_node}-GPU nodes"
                )
            return multinode_a800(n_nodes=tp // per_node, gpus_per_node=per_node)
        preset = known_topologies()[self.topology or _DEFAULT_TOPOLOGY]
        return preset.with_n_gpus(tp)

    # -- (de)serialisation -------------------------------------------------------

    def describe(self) -> str:
        if self.nodes:
            return f"{self.nodes} node(s) x {self.gpus_per_node} {self.device} GPUs"
        return f"{self.total_gpus}x {self.device} ({self.topology or _DEFAULT_TOPOLOGY})"

    def to_dict(self) -> dict:
        return {
            "device": self.device,
            "topology": self.topology,
            "gpus": self.gpus,
            "nodes": self.nodes,
            "gpus_per_node": self.gpus_per_node,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClusterSpec":
        return cls(
            device=payload.get("device", "a800"),
            topology=payload.get("topology"),
            gpus=payload.get("gpus"),
            nodes=payload.get("nodes"),
            gpus_per_node=payload.get("gpus_per_node", 8),
        )
